//! String interning.
//!
//! The index and the ACSDb hold millions of repeated strings (terms, attribute
//! names). Interning turns them into `u32` symbols: smaller postings, faster
//! hashing, and cheap equality.

use crate::fxhash::FxHashMap;
use crate::ids::TermId;

/// An interned string handle. `Sym(0)` is the first interned string.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Sym(pub u32);

/// An append-only string interner for generic symbols (attribute names,
/// schema labels). A thin wrapper over [`TermDict`] — one interning
/// implementation, two handle types ([`Sym`] here, [`TermId`] for index
/// terms).
#[derive(Default, Clone, Debug)]
pub struct Interner {
    dict: TermDict,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its symbol (existing or fresh).
    pub fn intern(&mut self, s: &str) -> Sym {
        Sym(self.dict.intern(s).0)
    }

    /// Look up a symbol without interning.
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.dict.get(s).map(|id| Sym(id.0))
    }

    /// Resolve a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this interner.
    pub fn resolve(&self, sym: Sym) -> &str {
        self.dict.resolve(TermId(sym.0))
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.dict.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.dict.is_empty()
    }

    /// Iterate `(Sym, &str)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.dict.iter().map(|(id, s)| (Sym(id.0), s))
    }
}

/// The index's term dictionary: an append-only map from term text to a dense
/// [`TermId`], plus a sorted-dictionary view for whole-dictionary reads.
///
/// This is the one place term strings are stored; everything downstream of it
/// (postings lists, shard routing, the query kernel) keys by `TermId`, so the
/// serving hot path hashes a query term exactly once and then works with
/// `u32` indices. Ids are assigned in first-appearance order, which is what
/// makes the parallel index build's id remapping deterministic (absorbing
/// doc-range shards in range order replays the sequential interning order —
/// DESIGN.md §10).
#[derive(Default, Clone, Debug)]
pub struct TermDict {
    by_name: FxHashMap<String, TermId>,
    names: Vec<String>,
}

impl TermDict {
    /// Create an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `term`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.by_name.get(term) {
            return id;
        }
        let id = TermId(self.names.len() as u32);
        self.names.push(term.to_owned());
        self.by_name.insert(term.to_owned(), id);
        id
    }

    /// Look up a term without interning.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.by_name.get(term).copied()
    }

    /// Resolve an id back to its term text.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this dictionary.
    pub fn resolve(&self, id: TermId) -> &str {
        &self.names[id.as_usize()]
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate `(TermId, term)` pairs in id (first-appearance) order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, s)| (TermId(i as u32), s.as_str()))
    }

    /// The sorted-dictionary view: `(TermId, term)` pairs in lexicographic
    /// term order — the shard-count- and interning-order-independent sequence
    /// whole-dictionary scans iterate.
    pub fn iter_sorted(&self) -> impl Iterator<Item = (TermId, &str)> {
        let mut ids: Vec<u32> = (0..self.names.len() as u32).collect();
        ids.sort_unstable_by_key(|&i| self.names[i as usize].as_str());
        ids.into_iter()
            .map(|i| (TermId(i), self.names[i as usize].as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("honda");
        let b = i.intern("honda");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn resolve_roundtrip() {
        let mut i = Interner::new();
        let syms: Vec<Sym> = (0..100).map(|n| i.intern(&format!("t{n}"))).collect();
        for (n, s) in syms.iter().enumerate() {
            assert_eq!(i.resolve(*s), format!("t{n}"));
        }
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert!(i.get("x").is_none());
        i.intern("x");
        assert!(i.get("x").is_some());
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn iter_in_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let v: Vec<&str> = i.iter().map(|(_, s)| s).collect();
        assert_eq!(v, vec!["a", "b"]);
    }

    #[test]
    fn termdict_roundtrip_and_idempotence() {
        let mut d = TermDict::new();
        let a = d.intern("honda");
        let b = d.intern("honda");
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
        assert_eq!(d.resolve(a), "honda");
        assert_eq!(d.get("honda"), Some(a));
        assert!(d.get("ford").is_none());
    }

    #[test]
    fn termdict_ids_are_first_appearance_order() {
        let mut d = TermDict::new();
        assert_eq!(d.intern("zebra"), TermId(0));
        assert_eq!(d.intern("apple"), TermId(1));
        assert_eq!(d.intern("zebra"), TermId(0));
        let in_id_order: Vec<&str> = d.iter().map(|(_, t)| t).collect();
        assert_eq!(in_id_order, vec!["zebra", "apple"]);
    }

    #[test]
    fn termdict_sorted_view_is_lexicographic() {
        let mut d = TermDict::new();
        for t in ["zip", "accord", "ford", "civic"] {
            d.intern(t);
        }
        let sorted: Vec<&str> = d.iter_sorted().map(|(_, t)| t).collect();
        assert_eq!(sorted, vec!["accord", "civic", "ford", "zip"]);
        // Ids in the sorted view still resolve to the right strings.
        for (id, t) in d.iter_sorted() {
            assert_eq!(d.resolve(id), t);
        }
        assert_eq!(TermDict::new().iter_sorted().count(), 0);
    }
}
