//! String interning.
//!
//! The index and the ACSDb hold millions of repeated strings (terms, attribute
//! names). Interning turns them into `u32` symbols: smaller postings, faster
//! hashing, and cheap equality.

use crate::fxhash::FxHashMap;

/// An interned string handle. `Sym(0)` is the first interned string.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Sym(pub u32);

/// An append-only string interner.
#[derive(Default, Clone, Debug)]
pub struct Interner {
    by_name: FxHashMap<String, Sym>,
    names: Vec<String>,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its symbol (existing or fresh).
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.by_name.get(s) {
            return sym;
        }
        let sym = Sym(self.names.len() as u32);
        self.names.push(s.to_owned());
        self.by_name.insert(s.to_owned(), sym);
        sym
    }

    /// Look up a symbol without interning.
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.by_name.get(s).copied()
    }

    /// Resolve a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this interner.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.names[sym.0 as usize]
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate `(Sym, &str)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, s)| (Sym(i as u32), s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("honda");
        let b = i.intern("honda");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn resolve_roundtrip() {
        let mut i = Interner::new();
        let syms: Vec<Sym> = (0..100).map(|n| i.intern(&format!("t{n}"))).collect();
        for (n, s) in syms.iter().enumerate() {
            assert_eq!(i.resolve(*s), format!("t{n}"));
        }
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert!(i.get("x").is_none());
        i.intern("x");
        assert!(i.get("x").is_some());
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn iter_in_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let v: Vec<&str> = i.iter().map(|(_, s)| s).collect();
        assert_eq!(v, vec!["a", "b"]);
    }
}
