//! # deepweb-common
//!
//! Shared substrate for the `deepweb` workspace: fast hashing, deterministic
//! RNG streams, Zipf sampling, tokenisation, string interning, typed ids,
//! experiment statistics, URL encoding, and the work-stealing [`pool`] the
//! parallel pipeline and index builders run on.
//!
//! Everything here is dependency-light and allocation-conscious; see
//! `DESIGN.md` §3 for where each module is consumed.

#![warn(missing_docs)]

pub mod error;
pub mod fxhash;
pub mod ids;
pub mod intern;
pub mod pool;
pub mod rng;
pub mod stats;
pub mod text;
pub mod urlcodec;
pub mod zipf;

pub use error::{Error, Result};
pub use fxhash::{fxhash64, FxHashMap, FxHashSet};
pub use ids::{DocId, FormId, QueryId, RecordId, SiteId, TermId};
pub use intern::{Interner, Sym, TermDict};
pub use pool::{shard_of, Sharded, ThreadPool};
pub use rng::{derive_rng, derive_rng_n, rng_from_seed, DEFAULT_SEED};
pub use urlcodec::Url;
pub use zipf::Zipf;
