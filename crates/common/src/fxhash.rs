//! A small, fast, non-cryptographic hasher in the style of `rustc-hash`.
//!
//! The approved offline dependency set does not include `rustc-hash`, and the
//! default SipHash tables are measurably slow on the short string and integer
//! keys that dominate this workspace (term ids, attribute names, URL strings).
//! This is the classic Fx multiply-and-rotate mix; it is *not* HashDoS
//! resistant, which is fine for a simulator whose inputs we generate ourselves.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant used by the Firefox/rustc "Fx" hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, deterministic, non-cryptographic [`Hasher`].
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            // Length tag keeps "ab" and "ab\0" distinct.
            buf[7] = rest.len() as u8;
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
// detlint:allow(nondet-iteration): alias definition site — the fixed-seed FxHasher replacing RandomState is the fix the rule points at
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
// detlint:allow(nondet-iteration): alias definition site — the fixed-seed FxHasher replacing RandomState is the fix the rule points at
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

/// Hash a single value with [`FxHasher`]; useful for content signatures.
pub fn fxhash64<T: std::hash::Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(fxhash64("deep web"), fxhash64("deep web"));
        assert_eq!(fxhash64(&12345u64), fxhash64(&12345u64));
    }

    #[test]
    fn distinguishes_short_strings() {
        assert_ne!(fxhash64("a"), fxhash64("b"));
        assert_ne!(fxhash64("ab"), fxhash64("ab\0"));
        assert_ne!(fxhash64(""), fxhash64("\0"));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(format!("key-{i}"), i);
        }
        for i in 0..1000u32 {
            assert_eq!(m[&format!("key-{i}")], i);
        }
    }

    #[test]
    fn set_dedups() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..100 {
            s.insert(i % 10);
        }
        assert_eq!(s.len(), 10);
    }
}
