//! URL parsing, building and query-string encoding.
//!
//! Surfacing is literally "pre-compute URLs", so URLs are a core data type:
//! the surfacer builds them from form submissions, the simulated server parses
//! them back, and the index uses them as document keys. Encoding must
//! round-trip exactly or coverage accounting breaks.

use std::fmt;

/// Percent-encode a query component (RFC 3986 unreserved kept literal,
/// space as `+` per form-urlencoding).
pub fn encode_component(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            b' ' => out.push('+'),
            _ => {
                out.push('%');
                out.push(
                    char::from_digit((b >> 4) as u32, 16)
                        .unwrap()
                        .to_ascii_uppercase(),
                );
                out.push(
                    char::from_digit((b & 0xf) as u32, 16)
                        .unwrap()
                        .to_ascii_uppercase(),
                );
            }
        }
    }
    out
}

/// Decode a form-urlencoded component. Invalid escapes are passed through
/// literally (crawler robustness beats strictness).
pub fn decode_component(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            // A full escape needs two bytes after the '%'; a truncated tail
            // ("%", "%4") falls through to the literal arm below.
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(v) => {
                        out.push(v);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// A parsed simulator URL: `http://<host><path>?<k=v&...>`.
///
/// Ordered key/value pairs — order matters for URL identity, matching how a
/// real crawler deduplicates by URL string.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Url {
    /// Host name, e.g. `usedcars-042.sim`.
    pub host: String,
    /// Path beginning with `/`.
    pub path: String,
    /// Query parameters in order of appearance.
    pub params: Vec<(String, String)>,
}

impl Url {
    /// Build a URL from parts.
    pub fn new(host: impl Into<String>, path: impl Into<String>) -> Self {
        let mut path = path.into();
        if !path.starts_with('/') {
            path.insert(0, '/');
        }
        Url {
            host: host.into(),
            path,
            params: Vec::new(),
        }
    }

    /// Append a query parameter.
    pub fn with_param(mut self, k: impl Into<String>, v: impl Into<String>) -> Self {
        self.params.push((k.into(), v.into()));
        self
    }

    /// Value of the first parameter named `k`.
    pub fn param(&self, k: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(pk, _)| pk == k)
            .map(|(_, v)| v.as_str())
    }

    /// Parse from string form. Returns `None` for anything that is not an
    /// `http://host/path[?query]` URL.
    pub fn parse(s: &str) -> Option<Url> {
        let rest = s.strip_prefix("http://")?;
        let (host_path, query) = match rest.split_once('?') {
            Some((hp, q)) => (hp, Some(q)),
            None => (rest, None),
        };
        let (host, path) = match host_path.split_once('/') {
            Some((h, p)) => (h, format!("/{p}")),
            None => (host_path, "/".to_string()),
        };
        if host.is_empty() {
            return None;
        }
        let mut params = Vec::new();
        if let Some(q) = query {
            for pair in q.split('&').filter(|p| !p.is_empty()) {
                let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
                params.push((decode_component(k), decode_component(v)));
            }
        }
        Some(Url {
            host: host.to_string(),
            path,
            params,
        })
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "http://{}{}", self.host, self.path)?;
        for (i, (k, v)) in self.params.iter().enumerate() {
            write!(
                f,
                "{}{}={}",
                if i == 0 { '?' } else { '&' },
                encode_component(k),
                encode_component(v)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip_basic() {
        for s in ["honda civic", "a&b=c", "100%", "zip 94043", "~tilde._-"] {
            assert_eq!(decode_component(&encode_component(s)), s);
        }
    }

    #[test]
    fn decode_tolerates_bad_escapes() {
        assert_eq!(decode_component("100%zz"), "100%zz");
        assert_eq!(decode_component("%"), "%");
        assert_eq!(decode_component("%4"), "%4");
    }

    #[test]
    fn decode_tolerates_truncated_escapes_after_valid_ones() {
        // The tail of the buffer after a valid escape must still be handled:
        // the '%' guard is a bounds check, not a validity check.
        assert_eq!(decode_component("%41%"), "A%");
        assert_eq!(decode_component("%41%4"), "A%4");
        assert_eq!(decode_component("a%20%"), "a %");
        assert_eq!(decode_component("%2B%zz%"), "+%zz%");
        // '%' followed by one valid hex digit then end-of-input.
        assert_eq!(decode_component("x%A"), "x%A");
    }

    #[test]
    fn url_display_and_parse_roundtrip() {
        let u = Url::new("cars-01.sim", "/search")
            .with_param("make", "ford")
            .with_param("min price", "1000");
        let s = u.to_string();
        assert_eq!(s, "http://cars-01.sim/search?make=ford&min+price=1000");
        let back = Url::parse(&s).unwrap();
        assert_eq!(back, u);
    }

    #[test]
    fn parse_without_query_or_path() {
        let u = Url::parse("http://x.sim").unwrap();
        assert_eq!(u.path, "/");
        assert!(u.params.is_empty());
        assert!(Url::parse("ftp://x").is_none());
        assert!(Url::parse("http://").is_none());
    }

    #[test]
    fn param_lookup_first_wins() {
        let u = Url::parse("http://h.sim/p?a=1&a=2&b=3").unwrap();
        assert_eq!(u.param("a"), Some("1"));
        assert_eq!(u.param("b"), Some("3"));
        assert_eq!(u.param("c"), None);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn component_roundtrip(s in "\\PC{0,40}") {
            prop_assert_eq!(decode_component(&encode_component(&s)), s);
        }

        #[test]
        fn escape_heavy_roundtrip(s in "[%+ a-fzA-F0-9]{0,24}") {
            // Percent- and plus-heavy inputs stress the escape scanner: the
            // encoded form must round-trip, and decoding the raw (possibly
            // invalid) input must never panic.
            prop_assert_eq!(decode_component(&encode_component(&s)), s.clone());
            let _ = decode_component(&s);
        }

        #[test]
        fn url_roundtrip(
            host in "[a-z]{1,10}\\.sim",
            path in "/[a-z0-9/]{0,15}",
            params in prop::collection::vec(("[a-z_]{1,8}", "[ -~]{0,12}"), 0..5),
        ) {
            let mut u = Url::new(host, path);
            for (k, v) in params {
                u = u.with_param(k, v);
            }
            let parsed = Url::parse(&u.to_string());
            prop_assert_eq!(parsed, Some(u));
        }

        #[test]
        fn parse_never_panics(s in "\\PC{0,60}") {
            let _ = Url::parse(&s);
        }
    }
}
