//! Power-law (Zipf) sampling.
//!
//! The paper's impact analysis rests on the observation that "the distribution
//! of queries in search engines takes the form of a power law with a heavy
//! tail" (§3.2). Both the query workload generator and the popularity of
//! synthetic sites use this sampler.
//!
//! Implementation: explicit normalised CDF over ranks `1..=n` with binary
//! search. Building is O(n); sampling is O(log n) and allocation-free. For the
//! `n` used here (≤ a few hundred thousand) this is faster and simpler than
//! rejection-based samplers, and it is exactly reproducible.

use rand::Rng;

/// A Zipf distribution over ranks `0..n` (rank 0 is the most popular item).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// `s ≈ 1.0` matches web query logs; larger `s` concentrates more mass in
    /// the head.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite and positive.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite() && s > 0.0, "Zipf exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating point leaving the last entry at 0.999...:
        *cdf.last_mut().unwrap() = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the distribution has a single rank.
    pub fn is_empty(&self) -> bool {
        false // by construction n > 0
    }

    /// Sample a rank in `0..n` (0 = most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first rank whose cumulative mass
        // reaches u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of `rank`.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::derive_rng;

    #[test]
    fn head_is_heavier_than_tail() {
        let z = Zipf::new(1000, 1.0);
        assert!(z.pmf(0) > z.pmf(10));
        assert!(z.pmf(10) > z.pmf(500));
    }

    #[test]
    fn samples_in_range_and_head_heavy() {
        let z = Zipf::new(100, 1.07);
        let mut rng = derive_rng(1, "zipf-test");
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            let r = z.sample(&mut rng);
            assert!(r < 100);
            counts[r] += 1;
        }
        // Rank 0 should dominate rank 50 by a wide margin.
        assert!(
            counts[0] > counts[50] * 5,
            "head {} tail {}",
            counts[0],
            counts[50]
        );
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(321, 0.9);
        let total: f64 = (0..321).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_rank_always_zero() {
        let z = Zipf::new(1, 1.0);
        let mut rng = derive_rng(2, "zipf-one");
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn samples_always_in_range(n in 1usize..500, s in 0.2f64..2.5, seed in 0u64..1000) {
            let z = Zipf::new(n, s);
            let mut rng = crate::rng::derive_rng(seed, "zipf-prop");
            for _ in 0..50 {
                prop_assert!(z.sample(&mut rng) < n);
            }
        }

        #[test]
        fn pmf_is_monotone_decreasing(n in 2usize..300, s in 0.2f64..2.5) {
            let z = Zipf::new(n, s);
            for r in 1..n {
                prop_assert!(z.pmf(r - 1) >= z.pmf(r) - 1e-12);
            }
        }
    }
}
