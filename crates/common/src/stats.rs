//! Small statistics helpers used by experiment reporting: percentiles,
//! cumulative-share curves (the paper's "top 10,000 forms account for 50% of
//! results" is a point on such a curve), precision/recall, and Gini.

/// Mean of a slice (0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation (0 for fewer than two samples).
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// `p`-th percentile (0..=100) using nearest-rank on a sorted copy.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
    v[rank.min(v.len() - 1)]
}

/// Cumulative share curve: given per-item weights, sort descending and return
/// for each rank `r` the fraction of total weight carried by items `0..=r`.
///
/// `cumulative_share(&w)[k-1]` answers "what fraction of results do the top-k
/// items account for" — the exact shape behind the paper's long-tail claim.
pub fn cumulative_share(weights: &[f64]) -> Vec<f64> {
    let mut w = weights.to_vec();
    w.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let total: f64 = w.iter().sum();
    if total <= 0.0 {
        return vec![0.0; w.len()];
    }
    let mut acc = 0.0;
    w.iter()
        .map(|x| {
            acc += x;
            acc / total
        })
        .collect()
}

/// Smallest k such that the top-k items carry at least `share` of the total.
pub fn rank_reaching_share(weights: &[f64], share: f64) -> usize {
    let curve = cumulative_share(weights);
    curve
        .iter()
        .position(|&c| c >= share)
        .map_or(curve.len(), |p| p + 1)
}

/// Gini coefficient of a weight distribution (0 = uniform, →1 = concentrated).
pub fn gini(weights: &[f64]) -> f64 {
    let n = weights.len();
    if n == 0 {
        return 0.0;
    }
    let mut w = weights.to_vec();
    w.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let total: f64 = w.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut cum = 0.0;
    let mut b = 0.0;
    for x in &w {
        cum += x;
        b += cum;
    }
    // Gini = 1 - 2*B/(n*total) + 1/n, standard discrete Lorenz form.
    1.0 - 2.0 * b / (n as f64 * total) + 1.0 / n as f64
}

/// Precision / recall / F1 over counted outcomes.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PrecisionRecall {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
}

impl PrecisionRecall {
    /// Precision = tp / (tp+fp); 1.0 when nothing was predicted.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall = tp / (tp+fn); 1.0 when nothing was expected.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!(stddev(&[2.0, 2.0, 2.0]) < 1e-12);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
    }

    #[test]
    fn cumulative_share_monotone_and_ends_at_one() {
        let w = [5.0, 1.0, 3.0, 1.0];
        let c = cumulative_share(&w);
        assert!((c.last().unwrap() - 1.0).abs() < 1e-12);
        assert!(c.windows(2).all(|p| p[0] <= p[1] + 1e-12));
        assert!((c[0] - 0.5).abs() < 1e-12); // top item has weight 5/10
    }

    #[test]
    fn rank_reaching_share_matches_paper_shape() {
        // A power-law-ish weight vector: a few heads, long tail.
        let mut w: Vec<f64> = (1..=1000).map(|k| 1.0 / k as f64).collect();
        w.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let k50 = rank_reaching_share(&w, 0.5);
        let k85 = rank_reaching_share(&w, 0.85);
        assert!(k50 < k85);
        assert!(k85 < 1000);
    }

    #[test]
    fn gini_uniform_low_concentrated_high() {
        let uniform = vec![1.0; 100];
        let mut concentrated = vec![0.0; 100];
        concentrated[0] = 100.0;
        assert!(gini(&uniform) < 0.01);
        assert!(gini(&concentrated) > 0.9);
    }

    #[test]
    fn pr_f1() {
        let pr = PrecisionRecall {
            tp: 8,
            fp: 2,
            fn_: 2,
        };
        assert!((pr.precision() - 0.8).abs() < 1e-12);
        assert!((pr.recall() - 0.8).abs() < 1e-12);
        assert!((pr.f1() - 0.8).abs() < 1e-12);
        let empty = PrecisionRecall::default();
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.f1(), 1.0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn cumulative_share_is_monotone_in_unit_interval(
            w in prop::collection::vec(0.0f64..100.0, 1..50),
        ) {
            let c = cumulative_share(&w);
            prop_assert_eq!(c.len(), w.len());
            for pair in c.windows(2) {
                prop_assert!(pair[0] <= pair[1] + 1e-9);
            }
            for &v in &c {
                prop_assert!((0.0..=1.0 + 1e-9).contains(&v));
            }
        }

        #[test]
        fn gini_in_unit_interval(w in prop::collection::vec(0.0f64..100.0, 1..50)) {
            let g = gini(&w);
            prop_assert!((0.0..=1.0).contains(&g), "gini {}", g);
        }

        #[test]
        fn rank_reaching_share_monotone(
            w in prop::collection::vec(0.01f64..100.0, 1..40),
            a in 0.1f64..0.5,
            b in 0.5f64..0.99,
        ) {
            prop_assert!(rank_reaching_share(&w, a) <= rank_reaching_share(&w, b));
        }
    }
}
