//! Workspace error type.
//!
//! The simulator is in-process, so most "errors" are domain outcomes
//! (HTTP 404, malformed form) rather than I/O failures; they are still typed
//! so that pipelines can distinguish "site said no" from "caller bug".

use std::fmt;

/// Errors shared across the workspace.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Error {
    /// A URL failed to parse or referenced an unknown host/path.
    BadUrl(String),
    /// The simulated server returned an error status for a request.
    Http {
        /// HTTP-like status code (404, 500, ...).
        status: u16,
        /// The requested URL.
        url: String,
    },
    /// A form submission was invalid (unknown input, bad value).
    BadSubmission(String),
    /// A schema/type mismatch inside the store.
    Schema(String),
    /// A component was configured inconsistently.
    Config(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::BadUrl(u) => write!(f, "bad url: {u}"),
            Error::Http { status, url } => write!(f, "http {status} for {url}"),
            Error::BadSubmission(m) => write!(f, "bad form submission: {m}"),
            Error::Schema(m) => write!(f, "schema error: {m}"),
            Error::Config(m) => write!(f, "config error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Workspace result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = Error::Http {
            status: 404,
            url: "http://x.sim/p".into(),
        };
        assert!(e.to_string().contains("404"));
        assert!(Error::BadUrl("x".into()).to_string().contains("bad url"));
    }
}
