//! Deterministic random number generation.
//!
//! Every stochastic component in the workspace (web generation, workloads,
//! probing) draws from a seeded [`rand::rngs::StdRng`]. Sub-components derive
//! their own streams from a parent seed plus a label so that adding a new
//! consumer never perturbs the draws seen by existing ones — a requirement for
//! reproducible experiments (same seed ⇒ byte-identical web, workload and
//! surfacing decisions).

use crate::fxhash::fxhash64;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Workspace-wide default seed used by examples and benches.
pub const DEFAULT_SEED: u64 = 0xD33B_0001;

/// Create a root RNG from a seed.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive an independent RNG stream for `label` under `seed`.
///
/// The derivation is a hash mix, so streams for distinct labels are
/// decorrelated, and the same `(seed, label)` pair always yields the same
/// stream regardless of call order elsewhere.
pub fn derive_rng(seed: u64, label: &str) -> StdRng {
    StdRng::seed_from_u64(mix(seed, label))
}

/// Derive an independent RNG stream for `(label, n)` under `seed`.
pub fn derive_rng_n(seed: u64, label: &str, n: u64) -> StdRng {
    StdRng::seed_from_u64(mix(seed, label) ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Stable 64-bit mix of a seed and a label.
pub fn mix(seed: u64, label: &str) -> u64 {
    fxhash64(&(seed, label))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u32> = derive_rng(7, "web")
            .sample_iter(rand::distributions::Standard)
            .take(16)
            .collect();
        let b: Vec<u32> = derive_rng(7, "web")
            .sample_iter(rand::distributions::Standard)
            .take(16)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn labels_decorrelate() {
        let a: Vec<u32> = derive_rng(7, "web")
            .sample_iter(rand::distributions::Standard)
            .take(16)
            .collect();
        let b: Vec<u32> = derive_rng(7, "workload")
            .sample_iter(rand::distributions::Standard)
            .take(16)
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_streams_distinct() {
        let a: u64 = derive_rng_n(7, "site", 1).gen();
        let b: u64 = derive_rng_n(7, "site", 2).gen();
        assert_ne!(a, b);
    }
}
