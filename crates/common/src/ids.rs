//! Typed identifiers used across crates.
//!
//! Newtypes prevent the classic bug of passing a site id where a document id
//! is expected; they cost nothing at runtime.

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
        pub struct $name(pub u32);

        impl $name {
            /// The underlying integer.
            #[inline]
            pub fn as_usize(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_type!(
    /// A web site (one host) in the simulated web.
    SiteId
);
id_type!(
    /// A document in the search index.
    DocId
);
id_type!(
    /// An HTML form (site-local forms get distinct global ids).
    FormId
);
id_type!(
    /// A record in a site's backing table.
    RecordId
);
id_type!(
    /// A query in a generated workload.
    QueryId
);
id_type!(
    /// An interned index term (see [`crate::intern::TermDict`]).
    TermId
);
id_type!(
    /// An interned facet key (annotation name) in the search index's facet
    /// vocabulary — the key side of annotation-aware scoring (paper §5.1).
    FacetKeyId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_displayable() {
        assert!(SiteId(1) < SiteId(2));
        assert_eq!(DocId(7).to_string(), "DocId(7)");
        assert_eq!(FormId::from(3u32).as_usize(), 3);
    }

    #[test]
    fn ids_usable_as_map_keys() {
        use crate::fxhash::FxHashMap;
        let mut m: FxHashMap<RecordId, &str> = FxHashMap::default();
        m.insert(RecordId(9), "x");
        assert_eq!(m[&RecordId(9)], "x");
    }
}
