//! The query-time half of virtual integration: routing, reformulation,
//! submission and result merging (paper §3.1).
//!
//! Contrast with surfacing: every user query here triggers *live* requests
//! against the underlying sites (the load problem), only sources whose
//! mediated schema matched can answer (the coverage problem), and only
//! queries the schema anticipated can be reformulated (the fortuitous-query
//! problem).

use crate::sources::{Source, SourceRegistry};
use deepweb_common::text::{lower_into, raw_tokens, tokenize};
use deepweb_common::Url;
use deepweb_html::{Document, WidgetKind};
use deepweb_webworld::Fetcher;

/// A routed-and-reformulated submission plan for one source.
#[derive(Clone, Debug)]
pub struct Reformulation {
    /// Parameter assignment for the source's form.
    pub assignment: Vec<(String, String)>,
    /// How many query tokens the assignment consumed.
    pub tokens_bound: usize,
}

/// One merged result.
#[derive(Clone, Debug)]
pub struct VerticalHit {
    /// Source host.
    pub host: String,
    /// Result page URL.
    pub url: Url,
    /// Result snippet (row text).
    pub text: String,
    /// Rank score (query-token overlap).
    pub score: f64,
}

/// Query-time statistics (the per-site load of the virtual approach).
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryStats {
    /// Sources the router selected.
    pub sources_routed: usize,
    /// Live requests issued.
    pub requests: u64,
}

/// The vertical search engine.
pub struct VerticalEngine<'a> {
    fetcher: &'a dyn Fetcher,
    registry: SourceRegistry,
    /// Sources consulted per query.
    pub max_sources: usize,
}

impl<'a> VerticalEngine<'a> {
    /// Build over a registry.
    pub fn new(fetcher: &'a dyn Fetcher, registry: SourceRegistry) -> Self {
        VerticalEngine {
            fetcher,
            registry,
            max_sources: 5,
        }
    }

    /// The registry (for effort accounting).
    pub fn registry(&self) -> &SourceRegistry {
        &self.registry
    }

    /// Route a keyword query: score sources by vocabulary and domain-keyword
    /// overlap; return the best `max_sources`.
    pub fn route(&self, query: &str) -> Vec<&Source> {
        let tokens: Vec<String> = tokenize(query).collect();
        let schemas = crate::mediated::builtin_schemas();
        let mut scored: Vec<(f64, &Source)> = self
            .registry
            .sources
            .iter()
            .map(|s| {
                let vocab_hits = tokens
                    .iter()
                    .filter(|t| s.vocabulary.iter().any(|v| v == *t))
                    .count();
                let dk = schemas
                    .iter()
                    .find(|m| m.domain == s.domain)
                    .map(|m| {
                        tokens
                            .iter()
                            .filter(|t| m.domain_keywords.contains(&t.as_str()))
                            .count()
                    })
                    .unwrap_or(0);
                ((vocab_hits * 2 + dk) as f64, s)
            })
            .filter(|(score, _)| *score > 0.0)
            .collect();
        scored.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.1.form.host.cmp(&b.1.form.host))
        });
        scored
            .into_iter()
            .take(self.max_sources)
            .map(|(_, s)| s)
            .collect()
    }

    /// Reformulate a keyword query for one source: tokens matching a mapped
    /// select's options bind that select; leftover tokens go to the keyword
    /// box if one is mapped.
    pub fn reformulate(source: &Source, query: &str) -> Reformulation {
        let tokens: Vec<String> = tokenize(query).collect();
        let mut assignment: Vec<(String, String)> = Vec::new();
        let mut consumed = vec![false; tokens.len()];
        for m in &source.mappings {
            let Some(input) = source.form.input(&m.input) else {
                continue;
            };
            if let WidgetKind::SelectMenu { .. } = input.kind {
                let options = input.options();
                if let Some((ti, tok)) = tokens
                    .iter()
                    .enumerate()
                    .find(|(ti, t)| !consumed[*ti] && options.contains(&t.as_str()))
                {
                    assignment.push((m.input.clone(), tok.clone()));
                    consumed[ti] = true;
                }
            }
        }
        // Leftover tokens → keyword element, if mapped.
        let leftover: Vec<String> = tokens
            .iter()
            .zip(&consumed)
            .filter(|(_, &c)| !c)
            .map(|(t, _)| t.clone())
            .collect();
        let mut tokens_bound = consumed.iter().filter(|&&c| c).count();
        if !leftover.is_empty() {
            if let Some(kw_input) = source
                .mappings
                .iter()
                .find(|m| m.element == "keywords")
                .map(|m| m.input.clone())
            {
                tokens_bound += leftover.len();
                assignment.push((kw_input, leftover.join(" ")));
            }
        }
        Reformulation {
            assignment,
            tokens_bound,
        }
    }

    /// Answer a query: route, reformulate, submit live, extract result rows,
    /// merge and rank.
    pub fn answer(&self, query: &str, k: usize) -> (Vec<VerticalHit>, QueryStats) {
        let mut stats = QueryStats::default();
        let routed = self.route(query);
        stats.sources_routed = routed.len();
        let qtokens: Vec<String> = tokenize(query).collect();
        let mut matched = vec![false; qtokens.len()];
        let mut tok_buf = String::new();
        let mut hits: Vec<VerticalHit> = Vec::new();
        for source in routed {
            let reform = Self::reformulate(source, query);
            if reform.assignment.is_empty() {
                continue;
            }
            let mut url = source.form.action_url.clone();
            for (k, v) in source.form.hidden_params() {
                url = url.with_param(k, v);
            }
            for (k, v) in &reform.assignment {
                url = url.with_param(k.clone(), v.clone());
            }
            stats.requests += 1;
            let Ok(resp) = self.fetcher.fetch(&url) else {
                continue;
            };
            let doc = Document::parse(&resp.html);
            // Wrapper: each record row/listing becomes a hit. Overlap streams
            // the row's tokens against a reusable per-query-token match mask
            // instead of materialising a token vector per row; each query
            // token (duplicates included, as before) counts once if present.
            // Row tokens flow through one recycled lowercase buffer (the
            // same `raw_tokens`/`lower_into` discipline as the query
            // scratch), so overlap scoring allocates nothing per row.
            for row_text in extract_result_rows(&doc) {
                matched.iter_mut().for_each(|m| *m = false);
                for raw in raw_tokens(&row_text) {
                    lower_into(&mut tok_buf, raw);
                    for (mi, q) in qtokens.iter().enumerate() {
                        if !matched[mi] && *q == tok_buf {
                            matched[mi] = true;
                        }
                    }
                }
                let overlap = matched.iter().filter(|&&m| m).count();
                if overlap > 0 {
                    hits.push(VerticalHit {
                        host: source.form.host.clone(),
                        url: url.clone(),
                        text: row_text,
                        score: overlap as f64 / qtokens.len().max(1) as f64,
                    });
                }
            }
        }
        // Fully explicit ordering (score desc, host asc, text asc): two hits
        // from the same source can tie on score, and ranking must never
        // lean on insertion order to separate them.
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.host.cmp(&b.host))
                .then_with(|| a.text.cmp(&b.text))
        });
        hits.truncate(k);
        (hits, stats)
    }
}

/// Per-site wrapper: pull result rows out of a result page (table rows or
/// listing divs). This is the extraction that is "easier to write or infer"
/// inside one vertical (paper §3.1).
pub fn extract_result_rows(doc: &Document) -> Vec<String> {
    let mut rows: Vec<String> = Vec::new();
    for table in deepweb_html::extract_tables(doc) {
        for row in table.rows {
            rows.push(row.join(" "));
        }
    }
    for node in doc.walk() {
        if node.tag() == Some("div") && node.attr("class") == Some("listing") {
            rows.push(node.text_content());
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sources::register_sources;
    use deepweb_webworld::{generate, DomainKind, WebConfig};

    fn engine(w: &deepweb_webworld::World) -> VerticalEngine<'_> {
        let hosts: Vec<String> = w.truth.sites.iter().map(|t| t.host.clone()).collect();
        let reg = register_sources(&w.server, &hosts);
        VerticalEngine::new(&w.server, reg)
    }

    fn world() -> deepweb_webworld::World {
        generate(&WebConfig {
            num_sites: 40,
            post_fraction: 0.0,
            ..WebConfig::default()
        })
    }

    #[test]
    fn routes_car_queries_to_car_sites() {
        let w = world();
        let e = engine(&w);
        let routed = e.route("used honda civic");
        assert!(!routed.is_empty());
        assert!(routed.iter().all(|s| s.domain == "usedcars"));
    }

    #[test]
    fn reformulation_binds_select_options() {
        let w = world();
        let e = engine(&w);
        let routed = e.route("honda");
        let src = routed.first().expect("routed source");
        let r = VerticalEngine::reformulate(src, "honda 1995");
        assert!(r
            .assignment
            .iter()
            .any(|(k, v)| k == "make" && v == "honda"));
    }

    #[test]
    fn in_domain_query_gets_answers_with_live_load() {
        let w = world();
        let e = engine(&w);
        w.server.reset_counts();
        let (hits, stats) = e.answer("honda", 10);
        assert!(stats.sources_routed > 0);
        assert!(stats.requests > 0);
        // Live traffic hit the sites at query time.
        assert!(w.server.total_requests() >= stats.requests);
        if !hits.is_empty() {
            assert!(hits[0].text.contains("honda"));
        }
    }

    #[test]
    fn fortuitous_query_fails_in_vertical() {
        let w = world();
        let e = engine(&w);
        // Faculty sites are not in any mediated schema; this query routes
        // nowhere (the paper's §3.2 example).
        let (hits, stats) = e.answer("sigmod innovations award mit professor", 10);
        assert_eq!(stats.sources_routed, 0);
        assert!(hits.is_empty());
        // Sanity: the content *does* exist in the web.
        let exists = w.server.sites().iter().any(|s| {
            s.domain == DomainKind::Faculty
                && s.table
                    .table()
                    .iter()
                    .any(|(_, row)| row.iter().any(|v| v.render().contains("sigmod")))
        });
        assert!(
            exists,
            "award bio must exist for the scenario to be meaningful"
        );
    }
}
