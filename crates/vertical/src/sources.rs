//! Source registration: analysing a form against the mediated schemas and
//! recording the semantic mappings (the per-source manual/semi-automatic
//! effort that the paper argues cannot scale to the whole web, §3.1).

use crate::mediated::{builtin_schemas, MediatedSchema};
use deepweb_common::Url;
use deepweb_html::WidgetKind;
use deepweb_surfacer::{analyze_page, CrawledForm};
use deepweb_webworld::Fetcher;

/// One input's mapping to a mediated element.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InputMapping {
    /// Form input name.
    pub input: String,
    /// Mediated element name.
    pub element: String,
    /// True when this input is a range bound (min side).
    pub is_range_min: bool,
    /// True when this input is a range bound (max side).
    pub is_range_max: bool,
}

/// A registered deep-web source.
#[derive(Clone, Debug)]
pub struct Source {
    /// The crawled form.
    pub form: CrawledForm,
    /// Which vertical it belongs to.
    pub domain: String,
    /// Semantic mappings input → element.
    pub mappings: Vec<InputMapping>,
    /// Select options per mapped categorical element (for routing).
    pub vocabulary: Vec<String>,
}

impl Source {
    /// Number of curated mappings (the paper's scale argument counts these).
    pub fn mapping_count(&self) -> usize {
        self.mappings.len()
    }
}

/// The registry of all sources a vertical engine knows.
#[derive(Clone, Debug, Default)]
pub struct SourceRegistry {
    /// Registered sources.
    pub sources: Vec<Source>,
    /// Hosts whose forms matched no mediated schema (out of scope for the
    /// vertical approach — the coverage gap of §3.1).
    pub unmapped_hosts: Vec<String>,
}

impl SourceRegistry {
    /// Total mapping entries across sources.
    pub fn total_mappings(&self) -> usize {
        self.sources.iter().map(Source::mapping_count).sum()
    }

    /// Sources of one domain.
    pub fn of_domain(&self, domain: &str) -> Vec<&Source> {
        self.sources.iter().filter(|s| s.domain == domain).collect()
    }
}

/// Analyse one form against the schemas; returns the best-matching domain
/// and mappings when at least two inputs map (one keyword box alone does not
/// identify a vertical).
pub fn classify_form(form: &CrawledForm, schemas: &[MediatedSchema]) -> Option<Source> {
    let mut best: Option<Source> = None;
    for schema in schemas {
        let mut mappings = Vec::new();
        let mut vocabulary = Vec::new();
        for input in form.fillable_inputs() {
            if let Some(el) = schema.match_input(&input.name, &input.label) {
                let lname = input.name.to_ascii_lowercase();
                mappings.push(InputMapping {
                    input: input.name.clone(),
                    element: el.name.to_string(),
                    is_range_min: lname.contains("min")
                        || lname.contains("from")
                        || lname.contains("low"),
                    is_range_max: lname.contains("max")
                        || lname.contains("to")
                        || lname.contains("high"),
                });
                if let WidgetKind::SelectMenu { .. } = input.kind {
                    vocabulary.extend(input.options().iter().map(|s| s.to_string()));
                }
            }
        }
        // A form qualifies for a vertical only if it maps the schema's
        // identifying element (make for cars, cuisine for restaurants, ...)
        // plus at least one more — a curator would not file a form under
        // "used cars" without a make field.
        let has_identifier = schema
            .elements
            .first()
            .is_some_and(|id| mappings.iter().any(|m| m.element == id.name));
        if has_identifier
            && mappings.len() >= 2
            && best
                .as_ref()
                .is_none_or(|b| mappings.len() > b.mappings.len())
        {
            best = Some(Source {
                form: form.clone(),
                domain: schema.domain.to_string(),
                mappings,
                vocabulary,
            });
        }
    }
    best
}

/// Register all GET forms reachable from the given hosts' `/search` pages.
pub fn register_sources(fetcher: &dyn Fetcher, hosts: &[String]) -> SourceRegistry {
    let schemas = builtin_schemas();
    let mut registry = SourceRegistry::default();
    for host in hosts {
        let url = Url::new(host.clone(), "/search");
        let Ok(resp) = fetcher.fetch(&url) else {
            continue;
        };
        let forms = analyze_page(&url, &resp.html);
        let mut mapped = false;
        for form in forms {
            if form.post {
                continue;
            }
            if let Some(src) = classify_form(&form, &schemas) {
                registry.sources.push(src);
                mapped = true;
            }
        }
        if !mapped {
            registry.unmapped_hosts.push(host.clone());
        }
    }
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepweb_webworld::{generate, DomainKind, WebConfig};

    #[test]
    fn registers_in_domain_sites_and_skips_others() {
        let w = generate(&WebConfig {
            num_sites: 40,
            ..WebConfig::default()
        });
        let hosts: Vec<String> = w.truth.sites.iter().map(|t| t.host.clone()).collect();
        let reg = register_sources(&w.server, &hosts);
        assert!(
            !reg.sources.is_empty(),
            "should register some car/realestate/jobs sites"
        );
        // Faculty/government/media sites have no 2-element match in the
        // builtin schemas → unmapped (the vertical coverage gap).
        let faculty_host = w
            .truth
            .sites
            .iter()
            .find(|t| t.domain == DomainKind::Faculty)
            .map(|t| t.host.clone());
        if let Some(h) = faculty_host {
            assert!(
                reg.unmapped_hosts.contains(&h),
                "faculty must be out of scope"
            );
        }
        // Every registered used-cars source maps its make select.
        for s in reg.of_domain("usedcars") {
            assert!(s.mappings.iter().any(|m| m.element == "make"));
        }
    }

    #[test]
    fn mapping_effort_counts() {
        let w = generate(&WebConfig {
            num_sites: 40,
            ..WebConfig::default()
        });
        let hosts: Vec<String> = w.truth.sites.iter().map(|t| t.host.clone()).collect();
        let reg = register_sources(&w.server, &hosts);
        assert!(reg.total_mappings() >= 2 * reg.sources.len());
    }
}
