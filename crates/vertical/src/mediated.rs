//! Mediated schemas — the heart of the virtual-integration approach
//! (paper §3.1): one schema per domain, built by hand exactly as a vertical
//! search company would.

/// Kind of a mediated element.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ElementKind {
    /// Categorical attribute (maps to selects).
    Categorical,
    /// Numeric attribute (maps to range inputs / typed boxes).
    Numeric,
    /// Free-text attribute (maps to search boxes).
    Keyword,
}

/// One element of a mediated schema.
#[derive(Clone, Debug)]
pub struct MediatedElement {
    /// Canonical name.
    pub name: &'static str,
    /// Name variants found in the wild (the manual mapping effort the paper
    /// says does not scale — each entry here is curated labour).
    pub synonyms: &'static [&'static str],
    /// Kind.
    pub kind: ElementKind,
}

/// A mediated schema for one vertical.
#[derive(Clone, Debug)]
pub struct MediatedSchema {
    /// Domain name ("usedcars", ...).
    pub domain: &'static str,
    /// Elements.
    pub elements: Vec<MediatedElement>,
    /// Domain keywords used for routing queries to this vertical.
    pub domain_keywords: &'static [&'static str],
}

impl MediatedSchema {
    /// Element by canonical name.
    pub fn element(&self, name: &str) -> Option<&MediatedElement> {
        self.elements.iter().find(|e| e.name == name)
    }

    /// Find the element a raw input name/label maps to, if any.
    pub fn match_input(&self, input_name: &str, label: &str) -> Option<&MediatedElement> {
        let hay = format!("{input_name} {label}").to_ascii_lowercase();
        self.elements.iter().find(|e| {
            std::iter::once(e.name)
                .chain(e.synonyms.iter().copied())
                .any(|syn| hay.contains(syn))
        })
    }
}

/// The hand-built mediated schemas for the verticals we target.
pub fn builtin_schemas() -> Vec<MediatedSchema> {
    vec![
        MediatedSchema {
            domain: "usedcars",
            elements: vec![
                MediatedElement {
                    name: "make",
                    synonyms: &["manufacturer", "brand"],
                    kind: ElementKind::Categorical,
                },
                MediatedElement {
                    name: "model",
                    synonyms: &[],
                    kind: ElementKind::Categorical,
                },
                MediatedElement {
                    name: "price",
                    synonyms: &["cost", "asking"],
                    kind: ElementKind::Numeric,
                },
                MediatedElement {
                    name: "year",
                    synonyms: &["model year"],
                    kind: ElementKind::Numeric,
                },
                MediatedElement {
                    name: "zip",
                    synonyms: &["zipcode", "zip_code", "postalcode", "postal"],
                    kind: ElementKind::Categorical,
                },
                MediatedElement {
                    name: "city",
                    synonyms: &["town", "location"],
                    kind: ElementKind::Categorical,
                },
                MediatedElement {
                    name: "keywords",
                    synonyms: &["q", "query", "search", "terms"],
                    kind: ElementKind::Keyword,
                },
            ],
            domain_keywords: &["used", "car", "cars", "auto", "civic", "sedan", "mileage"],
        },
        MediatedSchema {
            domain: "realestate",
            elements: vec![
                MediatedElement {
                    name: "type",
                    synonyms: &["property type"],
                    kind: ElementKind::Categorical,
                },
                MediatedElement {
                    name: "bedrooms",
                    synonyms: &["beds"],
                    kind: ElementKind::Numeric,
                },
                MediatedElement {
                    name: "price",
                    synonyms: &["cost"],
                    kind: ElementKind::Numeric,
                },
                MediatedElement {
                    name: "zip",
                    synonyms: &["zipcode", "zip_code", "postalcode"],
                    kind: ElementKind::Categorical,
                },
                MediatedElement {
                    name: "city",
                    synonyms: &["town", "location"],
                    kind: ElementKind::Categorical,
                },
                MediatedElement {
                    name: "keywords",
                    synonyms: &["q", "query", "search", "terms"],
                    kind: ElementKind::Keyword,
                },
            ],
            domain_keywords: &["house", "condo", "apartment", "rent", "bedroom", "listing"],
        },
        MediatedSchema {
            domain: "jobs",
            elements: vec![
                MediatedElement {
                    name: "category",
                    synonyms: &["job category"],
                    kind: ElementKind::Categorical,
                },
                MediatedElement {
                    name: "salary",
                    synonyms: &["pay", "compensation"],
                    kind: ElementKind::Numeric,
                },
                MediatedElement {
                    name: "city",
                    synonyms: &["town", "location"],
                    kind: ElementKind::Categorical,
                },
                MediatedElement {
                    name: "keywords",
                    synonyms: &["q", "query", "search", "terms"],
                    kind: ElementKind::Keyword,
                },
            ],
            domain_keywords: &[
                "job", "jobs", "position", "hiring", "engineer", "nurse", "salary",
            ],
        },
        MediatedSchema {
            domain: "restaurants",
            elements: vec![
                MediatedElement {
                    name: "cuisine",
                    synonyms: &["food type"],
                    kind: ElementKind::Categorical,
                },
                MediatedElement {
                    name: "zip",
                    synonyms: &["zipcode", "zip_code", "postalcode"],
                    kind: ElementKind::Categorical,
                },
                MediatedElement {
                    name: "keywords",
                    synonyms: &["q", "query", "search", "terms"],
                    kind: ElementKind::Keyword,
                },
            ],
            domain_keywords: &[
                "restaurant",
                "cuisine",
                "menu",
                "thai",
                "italian",
                "bistro",
                "cafe",
            ],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_schemas_have_keywords_element() {
        for s in builtin_schemas() {
            assert!(
                s.element("keywords").is_some(),
                "{} lacks keywords",
                s.domain
            );
            assert!(!s.domain_keywords.is_empty());
        }
    }

    #[test]
    fn match_input_via_synonyms() {
        let schemas = builtin_schemas();
        let cars = &schemas[0];
        assert_eq!(cars.match_input("zipcode", "").unwrap().name, "zip");
        assert_eq!(
            cars.match_input("min_price", "min price:").unwrap().name,
            "price"
        );
        assert_eq!(cars.match_input("q", "keywords:").unwrap().name, "keywords");
        assert!(cars.match_input("xyzzy", "").is_none());
    }
}
