//! # deepweb-vertical
//!
//! The virtual-integration baseline (paper §3.1): hand-built mediated
//! schemas per vertical, semantic mappings from form inputs to schema
//! elements, query routing, keyword reformulation, live form submission and
//! wrapper-based result extraction.
//!
//! Exists so the surfacing-vs-virtual comparison (E6) and the
//! fortuitous-query scenario (E13) run against a real implementation of the
//! other side, not a strawman.

#![warn(missing_docs)]

pub mod engine;
pub mod mediated;
pub mod sources;

pub use engine::{QueryStats, VerticalEngine, VerticalHit};
pub use mediated::{builtin_schemas, ElementKind, MediatedElement, MediatedSchema};
pub use sources::{classify_form, register_sources, InputMapping, Source, SourceRegistry};
