//! The web server: routes URLs to site pages and surface pages, and accounts
//! per-host request load (the paper's politeness argument, §3.2, needs load
//! numbers).

use crate::fetch::{http_error, Fetcher, Response};
use crate::render;
use crate::site::{CompiledQuery, Site};
use deepweb_common::ids::{RecordId, SiteId};
use deepweb_common::pool::Sharded;
use deepweb_common::{FxHashMap, Result, Url};

/// A static surface-web page.
#[derive(Clone, Debug)]
pub struct SurfacePage {
    /// Host serving the page.
    pub host: String,
    /// Path of the page.
    pub path: String,
    /// Page body.
    pub html: String,
}

/// The simulated web server for an entire web.
pub struct WebServer {
    sites: Vec<Site>,
    host_to_site: FxHashMap<String, usize>,
    surface: FxHashMap<String, FxHashMap<String, String>>,
    // Request accounting is sharded by host so parallel crawl workers
    // contend only when they hit hosts in the same shard.
    counts: Sharded<FxHashMap<String, u64>>,
}

/// Lock shards for the request counters — enough that the parallel pipeline's
/// workers rarely collide on the same shard.
const COUNT_SHARDS: usize = 16;

impl WebServer {
    /// Build a server over deep-web sites and surface pages.
    pub fn new(sites: Vec<Site>, surface_pages: Vec<SurfacePage>) -> Self {
        let host_to_site = sites
            .iter()
            .enumerate()
            .map(|(i, s)| (s.host.clone(), i))
            .collect();
        let mut surface: FxHashMap<String, FxHashMap<String, String>> = FxHashMap::default();
        for p in surface_pages {
            surface.entry(p.host).or_default().insert(p.path, p.html);
        }
        WebServer {
            sites,
            host_to_site,
            surface,
            counts: Sharded::new(COUNT_SHARDS),
        }
    }

    /// All deep-web sites.
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// Site by id.
    pub fn site(&self, id: SiteId) -> &Site {
        &self.sites[id.as_usize()]
    }

    /// Mutable site access for content growth ([`crate::genweb::grow_site`]).
    pub(crate) fn site_mut(&mut self, idx: usize) -> &mut Site {
        &mut self.sites[idx]
    }

    /// Site serving `host`, if any.
    pub fn site_by_host(&self, host: &str) -> Option<&Site> {
        self.host_to_site.get(host).map(|&i| &self.sites[i])
    }

    /// All hosts (site hosts + surface hosts), sorted.
    pub fn hosts(&self) -> Vec<String> {
        let mut hosts: Vec<String> = self
            .host_to_site
            .keys()
            .chain(self.surface.keys())
            .cloned()
            .collect();
        hosts.sort();
        hosts.dedup();
        hosts
    }

    /// Snapshot of per-host request counts (merged across shards).
    pub fn request_counts(&self) -> FxHashMap<String, u64> {
        let mut merged = FxHashMap::default();
        self.counts.for_each_shard(|shard| {
            for (host, n) in shard.iter() {
                *merged.entry(host.clone()).or_insert(0) += *n;
            }
        });
        merged
    }

    /// Total requests served.
    pub fn total_requests(&self) -> u64 {
        let mut total = 0;
        self.counts
            .for_each_shard(|shard| total += shard.values().sum::<u64>());
        total
    }

    /// Reset load accounting (e.g. between crawl phase and serve phase).
    pub fn reset_counts(&self) {
        self.counts.for_each_shard(|shard| shard.clear());
    }

    fn serve_site(&self, site: &Site, url: &Url) -> Result<Response> {
        match url.path.as_str() {
            "/" => Ok(ok(render::home_page(site))),
            "/about" => Ok(ok(render::about_page(site))),
            "/search" => Ok(ok(render::search_page(site))),
            "/browse" if site.browse_links > 0 => Ok(ok(render::browse_page(site))),
            "/results" => {
                if site.form.post {
                    // GET against a POST action: method not allowed.
                    return Err(http_error(405, url));
                }
                let page_no: usize = url.param("page").and_then(|p| p.parse().ok()).unwrap_or(0);
                match site.compile_query(&url.params) {
                    CompiledQuery::Query(conj) => {
                        let page = site.table.select_page(&conj, page_no, site.page_size);
                        Ok(ok(render::results_page(site, &url.params, &page)))
                    }
                    CompiledQuery::Invalid => Ok(ok(render::invalid_page(site))),
                }
            }
            "/item" => {
                let id: u32 = url
                    .param("id")
                    .and_then(|p| p.parse().ok())
                    .ok_or_else(|| http_error(404, url))?;
                if (id as usize) < site.table.table().len() {
                    Ok(ok(render::detail_page(site, RecordId(id))))
                } else {
                    Err(http_error(404, url))
                }
            }
            _ => Err(http_error(404, url)),
        }
    }
}

fn ok(html: String) -> Response {
    Response { status: 200, html }
}

impl Fetcher for WebServer {
    fn fetch(&self, url: &Url) -> Result<Response> {
        *self
            .counts
            .lock(&url.host)
            .entry(url.host.clone())
            .or_insert(0) += 1;
        if let Some(&i) = self.host_to_site.get(&url.host) {
            return self.serve_site(&self.sites[i], url);
        }
        if let Some(pages) = self.surface.get(&url.host) {
            return pages
                .get(&url.path)
                .map(|h| ok(h.clone()))
                .ok_or_else(|| http_error(404, url));
        }
        Err(http_error(404, url))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::tests_support::mini_site;
    use crate::site::RenderStyle;

    fn server() -> WebServer {
        let site = mini_site(RenderStyle::Table);
        let surface = vec![SurfacePage {
            host: "dir.sim".into(),
            path: "/".into(),
            html: "<a href=\"http://usedcars-000.sim/\">cars</a>".into(),
        }];
        WebServer::new(vec![site], surface)
    }

    #[test]
    fn serves_all_site_pages() {
        let s = server();
        for path in ["/", "/about", "/search"] {
            let r = s.fetch(&Url::new("usedcars-000.sim", path)).unwrap();
            assert_eq!(r.status, 200);
        }
    }

    #[test]
    fn results_execute_query() {
        let s = server();
        let url = Url::parse("http://usedcars-000.sim/results?make=honda").unwrap();
        let r = s.fetch(&url).unwrap();
        assert!(r.html.contains("2 results"));
    }

    #[test]
    fn invalid_typed_value_yields_no_results_page() {
        let s = server();
        let url = Url::parse("http://usedcars-000.sim/results?zip=nope").unwrap();
        let r = s.fetch(&url).unwrap();
        assert!(r.html.contains("No results found."));
    }

    #[test]
    fn item_pages_and_404s() {
        let s = server();
        assert!(s
            .fetch(&Url::parse("http://usedcars-000.sim/item?id=1").unwrap())
            .is_ok());
        assert!(s
            .fetch(&Url::parse("http://usedcars-000.sim/item?id=99").unwrap())
            .is_err());
        assert!(s
            .fetch(&Url::parse("http://usedcars-000.sim/nope").unwrap())
            .is_err());
        assert!(s
            .fetch(&Url::parse("http://unknown.sim/").unwrap())
            .is_err());
    }

    #[test]
    fn post_form_results_rejected() {
        let mut site = mini_site(RenderStyle::Table);
        site.form.post = true;
        let s = WebServer::new(vec![site], vec![]);
        let err = s.fetch(&Url::parse("http://usedcars-000.sim/results?make=honda").unwrap());
        assert!(matches!(
            err,
            Err(deepweb_common::Error::Http { status: 405, .. })
        ));
        // But the form page still serves.
        assert!(s.fetch(&Url::new("usedcars-000.sim", "/search")).is_ok());
    }

    #[test]
    fn surface_pages_served() {
        let s = server();
        let r = s.fetch(&Url::new("dir.sim", "/")).unwrap();
        assert!(r.html.contains("usedcars-000.sim"));
    }

    #[test]
    fn load_accounting() {
        let s = server();
        let _ = s.fetch(&Url::new("usedcars-000.sim", "/"));
        let _ = s.fetch(&Url::new("usedcars-000.sim", "/search"));
        let _ = s.fetch(&Url::new("dir.sim", "/"));
        let counts = s.request_counts();
        assert_eq!(counts["usedcars-000.sim"], 2);
        assert_eq!(counts["dir.sim"], 1);
        assert_eq!(s.total_requests(), 3);
        s.reset_counts();
        assert_eq!(s.total_requests(), 0);
    }

    #[test]
    fn pagination_via_url() {
        let s = server();
        let url = Url::parse("http://usedcars-000.sim/results?page=0").unwrap();
        let r = s.fetch(&url).unwrap();
        assert!(r.html.contains("3 results"));
    }
}
