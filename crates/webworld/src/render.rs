//! Result-page rendering for deep-web sites.
//!
//! Two layout styles (table / div-list) exercise the record extractor;
//! pagination links, per-record detail links and uniform "no results" pages
//! exercise the crawler and the informativeness test (identical empty pages
//! collapse to one signature).

use crate::site::{RenderStyle, Site};
use deepweb_common::urlcodec::encode_component;
use deepweb_common::{fxhash64, RecordId};
use deepweb_html::writer::{escape_text, PageBuilder};
use deepweb_store::Page;
use std::fmt::Write as _;

/// Deterministically break a hostile site's markup without losing content.
///
/// Real hostile pages are broken, not absent: unclosed paragraphs, stray
/// close tags, unbalanced inline formatting, truncated comments. Each mangle
/// preserves every character of visible text and every `<a>`/`<form>`
/// element — the recovery parser must still extract the same content — so
/// the mangles only stress the parser, never the ground truth. Which mangles
/// apply is a pure function of the host name.
pub fn mangle_markup(html: &str, host: &str) -> String {
    let bits = fxhash64(&host);
    let mut out = html.to_string();
    if bits & 1 != 0 {
        // Drop the first paragraph close: everything after becomes children
        // of the unclosed <p>.
        if let Some(i) = out.find("</p>") {
            out.replace_range(i..i + 4, "");
        }
    }
    if bits & 2 != 0 {
        // Stray close with no matching open, right after the heading.
        if let Some(i) = out.find("</h1>") {
            out.insert_str(i + 5, "</div></center>");
        }
    }
    if bits & 4 != 0 {
        // Unbalanced inline formatting left open at end of body.
        if let Some(i) = out.rfind("</body>") {
            out.insert_str(i, "<b><i>site by webmaster");
        }
    }
    // Always: a comment the author never closed, truncating the tail.
    out.push_str("<!-- analytics beacon ");
    out
}

/// Apply hostile mangling when the site is hostile; identity otherwise.
fn finish(site: &Site, html: String) -> String {
    if site.hostile {
        mangle_markup(&html, &site.host)
    } else {
        html
    }
}

/// Render the site's home page: characteristic text (the seed-keyword
/// source), links to the search page and optional browse page.
pub fn home_page(site: &Site) -> String {
    let mut pb = PageBuilder::new(&format!("{} — {} search", site.host, site.domain.name()));
    pb.h1(&format!("welcome to {}", site.host));
    // A paragraph of characteristic content: domain words plus a sample of
    // real record values, which is what iterative probing seeds from.
    let mut sample = String::new();
    for (_, row) in site.table.table().iter().take(5) {
        for v in row.iter() {
            sample.push_str(&v.render());
            sample.push(' ');
        }
    }
    pb.p(&format!(
        "search our {} database of {} listings: {}",
        site.domain.name(),
        site.table.table().len(),
        sample
    ));
    let mut links = vec![
        ("/search".to_string(), "advanced search".to_string()),
        ("/about".to_string(), "about us".to_string()),
    ];
    if site.browse_links > 0 {
        links.push(("/browse".to_string(), "browse listings".to_string()));
    }
    pb.link_list(&links);
    finish(site, pb.build())
}

/// Render the about page.
pub fn about_page(site: &Site) -> String {
    let mut pb = PageBuilder::new(&format!("about {}", site.host));
    pb.h1("about");
    pb.p(&format!(
        "{} is a {} site serving content in language {}.",
        site.host,
        site.domain.name(),
        site.language
    ));
    pb.link("/", "home");
    finish(site, pb.build())
}

/// Render the search page (the form page the crawler analyses).
pub fn search_page(site: &Site) -> String {
    let mut pb = PageBuilder::new(&format!("{} search", site.host));
    pb.h1(&format!("search {}", site.domain.name()));
    pb.raw(&site.render_form());
    pb.link("/", "home");
    finish(site, pb.build())
}

/// Render the browse page: links to the first `browse_links` detail pages
/// (these records are surface-reachable without the form, paper §2).
pub fn browse_page(site: &Site) -> String {
    let mut pb = PageBuilder::new(&format!("{} browse", site.host));
    pb.h1("browse listings");
    let links: Vec<(String, String)> = site
        .table
        .table()
        .iter()
        .take(site.browse_links)
        .map(|(id, row)| {
            (
                format!("/item?id={}", id.0),
                format!("listing {}: {}", id.0, row[0].render()),
            )
        })
        .collect();
    pb.link_list(&links);
    pb.build()
}

/// Render one result page for an executed query.
///
/// `params` are the submission parameters (used to build pagination links and
/// the page heading); `page` is the store's paginated answer.
pub fn results_page(site: &Site, params: &[(String, String)], page: &Page) -> String {
    let constraint: String = params
        .iter()
        .filter(|(k, v)| k != "page" && !v.is_empty() && v != "any")
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(" ");
    let mut pb = PageBuilder::new(&format!("{} results {}", site.host, constraint));
    pb.h1(&format!("{} results", page.total));
    if !constraint.is_empty() {
        pb.p(&format!("query: {constraint}"));
    }
    if page.total == 0 {
        pb.p("No results found.");
        pb.link("/search", "back to search");
        return pb.build();
    }
    let schema = site.table.table().schema();
    match site.style {
        RenderStyle::Table => {
            let header: Vec<&str> = schema.names();
            let mut body = String::from("<table><tr>");
            for h in &header {
                let _ = write!(body, "<th>{}</th>", escape_text(h));
            }
            body.push_str("</tr>");
            for id in &page.ids {
                let row = site.table.table().row(*id);
                body.push_str("<tr>");
                let _ = write!(
                    body,
                    "<td><a href=\"/item?id={}\">{}</a></td>",
                    id.0,
                    escape_text(&row[0].render())
                );
                for v in &row[1..] {
                    let _ = write!(body, "<td>{}</td>", escape_text(&v.render()));
                }
                body.push_str("</tr>");
            }
            body.push_str("</table>");
            pb.raw(&body);
        }
        RenderStyle::List => {
            let mut body = String::new();
            for id in &page.ids {
                let row = site.table.table().row(*id);
                let _ = write!(
                    body,
                    "<div class=\"listing\"><a href=\"/item?id={}\"><b>{}</b></a>",
                    id.0,
                    escape_text(&row[0].render())
                );
                for (ci, v) in row.iter().enumerate().skip(1) {
                    let _ = write!(
                        body,
                        " <span class=\"{}\">{}</span>",
                        escape_text(&schema.column(ci).name),
                        escape_text(&v.render())
                    );
                }
                body.push_str("</div>");
            }
            pb.raw(&body);
        }
    }
    // Pagination links preserve the query parameters.
    let base: String = params
        .iter()
        .filter(|(k, _)| k != "page")
        .map(|(k, v)| format!("{}={}", encode_component(k), encode_component(v)))
        .collect::<Vec<_>>()
        .join("&");
    let mut nav: Vec<(String, String)> = Vec::new();
    if page.page > 0 {
        nav.push((
            format!("/results?{}&page={}", base, page.page - 1),
            "previous page".into(),
        ));
    }
    if (page.page + 1) * page.page_size < page.total {
        nav.push((
            format!("/results?{}&page={}", base, page.page + 1),
            "next page".into(),
        ));
    }
    if !nav.is_empty() {
        pb.link_list(&nav);
    }
    pb.build()
}

/// Render the "invalid input" page (same shape as an empty result).
pub fn invalid_page(site: &Site) -> String {
    let mut pb = PageBuilder::new(&format!("{} results", site.host));
    pb.h1("0 results");
    pb.p("No results found.");
    pb.link("/search", "back to search");
    pb.build()
}

/// Render a record's detail page.
pub fn detail_page(site: &Site, id: RecordId) -> String {
    let row = site.table.table().row(id);
    let schema = site.table.table().schema();
    let mut pb = PageBuilder::new(&format!("{} listing {}", site.host, id.0));
    pb.h1(&format!("listing {}", id.0));
    let rows: Vec<Vec<String>> = schema
        .columns()
        .iter()
        .zip(row.iter())
        .map(|(c, v)| vec![c.name.clone(), v.render()])
        .collect();
    pb.table(&["field", "value"], &rows);
    pb.link("/search", "back to search");
    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::tests_support::mini_site;
    use deepweb_html::Document;
    use deepweb_store::Conjunction;

    #[test]
    fn results_page_links_records() {
        let site = mini_site(RenderStyle::Table);
        let page = site.table.select_page(&Conjunction::all(), 0, 10);
        let html = results_page(&site, &[], &page);
        let doc = Document::parse(&html);
        let hrefs: Vec<&str> = doc
            .find_all("a")
            .iter()
            .filter_map(|a| a.attr("href"))
            .collect();
        assert!(hrefs.iter().any(|h| h.starts_with("/item?id=")));
        assert!(html.contains("3 results"));
    }

    #[test]
    fn pagination_links_present() {
        let site = mini_site(RenderStyle::Table);
        let page = site.table.select_page(&Conjunction::all(), 0, 2);
        let params = vec![("make".to_string(), "honda".to_string())];
        let html = results_page(&site, &params, &page);
        assert!(html.contains("page=1"));
        assert!(!html.contains("previous page"));
        let page1 = site.table.select_page(&Conjunction::all(), 1, 2);
        let html1 = results_page(&site, &params, &page1);
        assert!(html1.contains("previous page"));
    }

    #[test]
    fn empty_results_uniform() {
        let site = mini_site(RenderStyle::Table);
        let page = Page {
            total: 0,
            ids: vec![],
            page: 0,
            page_size: 10,
        };
        let a = results_page(&site, &[("q".into(), "zzz".into())], &page);
        assert!(a.contains("No results found."));
    }

    #[test]
    fn list_style_renders_divs() {
        let site = mini_site(RenderStyle::List);
        let page = site.table.select_page(&Conjunction::all(), 0, 10);
        let html = results_page(&site, &[], &page);
        assert!(html.contains("class=\"listing\""));
        let doc = Document::parse(&html);
        assert!(doc.text().contains("honda"));
    }

    #[test]
    fn home_contains_characteristic_terms_and_search_link() {
        let site = mini_site(RenderStyle::Table);
        let html = home_page(&site);
        assert!(html.contains("/search"));
        assert!(html.contains("usedcars"));
        let doc = Document::parse(&html);
        assert!(doc.text().contains("honda"));
    }

    #[test]
    fn mangled_pages_keep_text_links_and_forms() {
        let mut site = mini_site(RenderStyle::Table);
        site.hostile = true;
        // Every mangle pattern must survive the recovery parser with content
        // intact; exercise all bit combinations via synthetic host names.
        for host in [
            "a.sim", "b.sim", "c.sim", "d.sim", "e.sim", "f7.sim", "g22.sim",
        ] {
            site.host = host.to_string();
            let clean = {
                let mut honest = site.clone();
                honest.hostile = false;
                search_page(&honest)
            };
            let hostile = search_page(&site);
            assert_ne!(clean, hostile, "{host}: mangling must change the markup");
            let doc = Document::parse(&hostile);
            // The form and its honest inputs survive.
            let forms = deepweb_html::extract_forms(&doc);
            assert_eq!(forms.len(), 1, "{host}");
            for name in ["make", "q", "lang"] {
                assert!(forms[0].input(name).is_some(), "{host}: lost {name}");
            }
            // Visible text of the clean page survives in the mangled one.
            let clean_text = Document::parse(&clean).text();
            let hostile_text = doc.text();
            for word in clean_text.split_whitespace().take(20) {
                assert!(
                    hostile_text.contains(word),
                    "{host}: mangled page lost {word:?}"
                );
            }
            // Home page keeps its links.
            let home = Document::parse(&home_page(&site));
            assert!(home
                .find_all("a")
                .iter()
                .any(|a| a.attr("href") == Some("/search")));
        }
    }

    #[test]
    fn detail_page_shows_all_fields() {
        let site = mini_site(RenderStyle::Table);
        let html = detail_page(&site, RecordId(1));
        let doc = Document::parse(&html);
        let text = doc.text();
        assert!(text.contains("ford"));
        assert!(text.contains("10001"));
    }
}
