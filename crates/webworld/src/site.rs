//! The deep-web site model.
//!
//! A site couples a backing [`IndexedTable`] with a [`FormSpec`] describing
//! its search form. The spec is the site's *private* CGI logic: it compiles
//! incoming query parameters into store predicates and renders the form as
//! HTML. The crawler never sees the spec — it sees only rendered HTML — so
//! everything the surfacer "understands" about a form it must infer, exactly
//! as in the paper. The spec doubles as experiment ground truth.

use deepweb_common::ids::SiteId;
use deepweb_common::text::tokenize;
use deepweb_html::FormBuilder;
use deepweb_store::{Conjunction, IndexedTable, Predicate, Value, ValueType};
use std::fmt::Write as _;

/// Content domain of a site.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DomainKind {
    /// Used-car classifieds (make/model/price/year/zip).
    UsedCars,
    /// Real-estate listings.
    RealEstate,
    /// Job listings.
    Jobs,
    /// Restaurant guides.
    Restaurants,
    /// Store locators (zip-code only lookup).
    StoreLocator,
    /// Government / NGO portals (the paper's long-tail poster child).
    Government,
    /// Library catalogues.
    Library,
    /// Media search with a database-selection form (paper §4.2).
    MediaSearch,
    /// University faculty directories (the fortuitous-query scenario, §3.2).
    Faculty,
}

impl DomainKind {
    /// All domains.
    pub fn all() -> &'static [DomainKind] {
        &[
            DomainKind::UsedCars,
            DomainKind::RealEstate,
            DomainKind::Jobs,
            DomainKind::Restaurants,
            DomainKind::StoreLocator,
            DomainKind::Government,
            DomainKind::Library,
            DomainKind::MediaSearch,
            DomainKind::Faculty,
        ]
    }

    /// Stable lowercase name (used in hostnames).
    pub fn name(self) -> &'static str {
        match self {
            DomainKind::UsedCars => "usedcars",
            DomainKind::RealEstate => "realestate",
            DomainKind::Jobs => "jobs",
            DomainKind::Restaurants => "restaurants",
            DomainKind::StoreLocator => "stores",
            DomainKind::Government => "gov",
            DomainKind::Library => "library",
            DomainKind::MediaSearch => "media",
            DomainKind::Faculty => "faculty",
        }
    }
}

/// What a form input *really* is (ground truth + CGI semantics).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Binding {
    /// Free-keyword search over the whole record.
    KeywordSearch,
    /// A text box accepting values of one type for an equality filter.
    TypedText {
        /// Column filtered.
        col: usize,
        /// Expected value type.
        ty: ValueType,
    },
    /// A select menu over a column's values ("" = no constraint).
    Select {
        /// Column filtered.
        col: usize,
    },
    /// Text box holding the lower bound of a range over `col`.
    RangeMin {
        /// Column bounded.
        col: usize,
        /// Value type of the bound.
        ty: ValueType,
    },
    /// Text box holding the upper bound of a range over `col`.
    RangeMax {
        /// Column bounded.
        col: usize,
        /// Value type of the bound.
        ty: ValueType,
    },
    /// A fixed hidden value (e.g. interface language).
    Hidden {
        /// The submitted value.
        value: String,
    },
    /// An input the backend ignores entirely (e.g. a "radius" menu on a
    /// store locator) — ground truth for uninformative-input detection.
    Ignored {
        /// Options shown to the user.
        options: Vec<String>,
    },
}

/// One input of a form spec.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InputSpec {
    /// Submission parameter name.
    pub name: String,
    /// Visible label preceding the widget.
    pub label: String,
    /// Semantics.
    pub binding: Binding,
}

/// Dependent select options (the make→model pattern, filled by JavaScript on
/// real sites; we embed the dependency table in a `<script>` blob that the
/// surfacer's JS emulator can read — paper §4.2).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DependentOptions {
    /// Name of the controlling select input.
    pub controller: String,
    /// Name of the dependent select input.
    pub dependent: String,
    /// controller value → allowed dependent values.
    pub map: Vec<(String, Vec<String>)>,
}

/// A site's search form.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FormSpec {
    /// Submission path (always site-relative, e.g. `/results`).
    pub action: String,
    /// True for POST forms (not surfaceable; paper §3.2).
    pub post: bool,
    /// Inputs in display order.
    pub inputs: Vec<InputSpec>,
    /// Optional JS-dependent select pair.
    pub dependent: Option<DependentOptions>,
}

/// Result of compiling query parameters against a form spec.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CompiledQuery {
    /// A valid conjunctive query.
    Query(Conjunction),
    /// At least one parameter was an invalid literal → empty result page.
    Invalid,
}

/// How a site lays out its result pages (exercises the extractor).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RenderStyle {
    /// `<table>` with a header row.
    Table,
    /// A `<div class=listing>` per record.
    List,
}

/// A deep-web site.
#[derive(Clone, Debug)]
pub struct Site {
    /// Globally unique id.
    pub id: SiteId,
    /// Host name, e.g. `usedcars-007.sim`.
    pub host: String,
    /// Content domain.
    pub domain: DomainKind,
    /// Language code of the site's text.
    pub language: String,
    /// Filler lexicon in the site's language.
    pub lexicon: Vec<String>,
    /// Backing records.
    pub table: IndexedTable,
    /// The search form.
    pub form: FormSpec,
    /// Results per page.
    pub page_size: usize,
    /// Result layout.
    pub style: RenderStyle,
    /// Whether the site exposes a `/browse` page linking to some records
    /// (making part of its content surface-reachable, paper §2).
    pub browse_links: usize,
    /// Hostile mode: the site serves broken markup and decorates its form
    /// with junk widgets (token hidden, password-named text box, client-side
    /// validation, inline handlers, absolute action). The backend and the
    /// honest inputs are unchanged, so ground truth still holds — a hardened
    /// surfacer should index exactly the honest subset.
    pub hostile: bool,
}

impl Site {
    /// Compile URL query parameters into a store query, mirroring what the
    /// site's CGI backend does. Unknown parameters are ignored; empty values
    /// and "any" select values impose no constraint; unparsable typed values
    /// invalidate the whole query.
    pub fn compile_query(&self, params: &[(String, String)]) -> CompiledQuery {
        let mut preds = Vec::new();
        for (k, v) in params {
            let Some(input) = self.form.inputs.iter().find(|i| &i.name == k) else {
                continue;
            };
            let v = v.trim();
            if v.is_empty() || v == "any" {
                continue;
            }
            match &input.binding {
                Binding::KeywordSearch => {
                    let kws: Vec<String> = tokenize(v).collect();
                    if !kws.is_empty() {
                        preds.push(Predicate::KeywordsAll(kws));
                    }
                }
                Binding::TypedText { col, ty } => match Value::parse_as(*ty, v) {
                    Some(value) => preds.push(Predicate::Eq { col: *col, value }),
                    None => return CompiledQuery::Invalid,
                },
                Binding::Select { col } => {
                    let ty = self.table.table().schema().column(*col).ty;
                    match Value::parse_as(ty, v) {
                        Some(value) => preds.push(Predicate::Eq { col: *col, value }),
                        None => return CompiledQuery::Invalid,
                    }
                }
                Binding::RangeMin { col, ty } => match Value::parse_as(*ty, v) {
                    Some(value) => preds.push(Predicate::Range {
                        col: *col,
                        min: Some(value),
                        max: None,
                    }),
                    None => return CompiledQuery::Invalid,
                },
                Binding::RangeMax { col, ty } => match Value::parse_as(*ty, v) {
                    Some(value) => preds.push(Predicate::Range {
                        col: *col,
                        min: None,
                        max: Some(value),
                    }),
                    None => return CompiledQuery::Invalid,
                },
                Binding::Hidden { .. } | Binding::Ignored { .. } => {}
            }
        }
        CompiledQuery::Query(Conjunction::new(preds))
    }

    /// The deterministic token-like value a hostile site plants in its
    /// hidden CSRF input (derived from the host, so re-crawls see the same
    /// token — the *value* is stable; the threat is that a naive surfacer
    /// would propagate it into every generated URL).
    pub fn hostile_token(&self) -> String {
        let h = deepweb_common::fxhash64(&self.host);
        format!("tok{h:016x}{:08x}", (h >> 32) as u32)
    }

    /// Render the search form as HTML (plus the dependency `<script>` blob if
    /// the form has JS-dependent selects).
    pub fn render_form(&self) -> String {
        // Hostile forms post to an absolute URL (scheme-downgrade shape) and
        // carry an inline submit handler. The action still resolves to this
        // host, so the backend semantics are untouched.
        let action = if self.hostile {
            format!("http://{}{}", self.host, self.form.action)
        } else {
            self.form.action.clone()
        };
        let mut fb = if self.form.post {
            FormBuilder::post(&action)
        } else {
            FormBuilder::get(&action)
        };
        if self.hostile {
            let token = self.hostile_token();
            fb = fb
                .form_attr("onsubmit", "return trackAndSubmit(this)")
                .input_with("", "hidden", "csrf_token", &[("value", token.as_str())])
                .input_with(
                    "member pin:",
                    "text",
                    "password",
                    &[("maxlength", "4"), ("autocomplete", "on")],
                )
                .input_with("resume:", "file", "upload", &[])
                .input_with(
                    "promo code:",
                    "text",
                    "promo",
                    &[
                        ("pattern", "[a-z0-9]+"),
                        ("maxlength", "8"),
                        ("onchange", "checkPromo(this)"),
                    ],
                );
        }
        for input in &self.form.inputs {
            fb = match &input.binding {
                Binding::KeywordSearch
                | Binding::TypedText { .. }
                | Binding::RangeMin { .. }
                | Binding::RangeMax { .. } => fb.text_box(&input.label, &input.name),
                Binding::Select { col } => {
                    let depends = self
                        .form
                        .dependent
                        .as_ref()
                        .is_some_and(|d| d.dependent == input.name);
                    let mut options = vec![String::new()];
                    if !depends {
                        options.extend(
                            self.table
                                .table()
                                .distinct_values(*col)
                                .into_iter()
                                .map(|v| v.render())
                                .take(60),
                        );
                    }
                    fb.select(&input.label, &input.name, &options)
                }
                Binding::Ignored { options } => {
                    let mut opts = vec![String::new()];
                    opts.extend(options.iter().cloned());
                    fb.select(&input.label, &input.name, &opts)
                }
                Binding::Hidden { value } => fb.hidden(&input.name, value),
            };
        }
        let mut html = fb.build();
        if let Some(dep) = &self.form.dependent {
            // The declarative dependency table a JS emulator would recover.
            let mut js = String::from("var dependentOptions = {");
            let _ = write!(js, "\"controller\":\"{}\",", dep.controller);
            let _ = write!(js, "\"dependent\":\"{}\",", dep.dependent);
            js.push_str("\"map\":{");
            for (i, (k, vals)) in dep.map.iter().enumerate() {
                if i > 0 {
                    js.push(',');
                }
                let _ = write!(js, "\"{k}\":[");
                for (j, v) in vals.iter().enumerate() {
                    if j > 0 {
                        js.push(',');
                    }
                    let _ = write!(js, "\"{v}\"");
                }
                js.push(']');
            }
            js.push_str("}};");
            let _ = write!(html, "<script>{js}</script>");
        }
        html
    }

    /// Names of inputs that genuinely constrain results (ground truth for
    /// informativeness experiments).
    pub fn effective_inputs(&self) -> Vec<&str> {
        self.form
            .inputs
            .iter()
            .filter(|i| !matches!(i.binding, Binding::Hidden { .. } | Binding::Ignored { .. }))
            .map(|i| i.name.as_str())
            .collect()
    }
}

/// Test fixtures shared across this crate's unit tests.
#[cfg(test)]
pub mod tests_support {
    use super::*;
    use deepweb_store::{Schema, Table};

    /// A three-record used-cars site with one of each input kind.
    pub fn mini_site(style: RenderStyle) -> Site {
        let schema = Schema::new(vec![
            ("make", ValueType::Text),
            ("year", ValueType::Int),
            ("price", ValueType::Money),
            ("zip", ValueType::Zip),
            ("description", ValueType::Text),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        for (m, y, p, z, d) in [
            ("honda", 1993, 4500, "94043", "clean honda civic"),
            ("ford", 1998, 3000, "10001", "ford focus runs great"),
            ("honda", 2001, 8000, "94043", "honda accord one owner"),
        ] {
            t.insert(vec![
                Value::Text(m.into()),
                Value::Int(y),
                Value::Money(p * 100),
                Value::Zip(z.into()),
                Value::Text(d.into()),
            ])
            .unwrap();
        }
        Site {
            id: SiteId(0),
            host: "usedcars-000.sim".into(),
            domain: DomainKind::UsedCars,
            language: "en".into(),
            lexicon: vec!["filler".into()],
            table: IndexedTable::build(t),
            form: FormSpec {
                action: "/results".into(),
                post: false,
                inputs: vec![
                    InputSpec {
                        name: "make".into(),
                        label: "make:".into(),
                        binding: Binding::Select { col: 0 },
                    },
                    InputSpec {
                        name: "min_price".into(),
                        label: "min price:".into(),
                        binding: Binding::RangeMin {
                            col: 2,
                            ty: ValueType::Money,
                        },
                    },
                    InputSpec {
                        name: "max_price".into(),
                        label: "max price:".into(),
                        binding: Binding::RangeMax {
                            col: 2,
                            ty: ValueType::Money,
                        },
                    },
                    InputSpec {
                        name: "zip".into(),
                        label: "zip code:".into(),
                        binding: Binding::TypedText {
                            col: 3,
                            ty: ValueType::Zip,
                        },
                    },
                    InputSpec {
                        name: "q".into(),
                        label: "keywords:".into(),
                        binding: Binding::KeywordSearch,
                    },
                    InputSpec {
                        name: "lang".into(),
                        label: String::new(),
                        binding: Binding::Hidden { value: "en".into() },
                    },
                ],
                dependent: None,
            },
            page_size: 10,
            style,
            browse_links: 0,
            hostile: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_site() -> Site {
        tests_support::mini_site(RenderStyle::Table)
    }

    fn q(site: &Site, params: &[(&str, &str)]) -> Vec<u32> {
        let params: Vec<(String, String)> = params
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        match site.compile_query(&params) {
            CompiledQuery::Query(c) => site.table.select(&c).iter().map(|r| r.0).collect(),
            CompiledQuery::Invalid => panic!("unexpected invalid"),
        }
    }

    #[test]
    fn select_and_range_compile() {
        let s = mini_site();
        assert_eq!(q(&s, &[("make", "honda")]), vec![0, 2]);
        assert_eq!(
            q(&s, &[("min_price", "4000"), ("max_price", "9000")]),
            vec![0, 2]
        );
        assert_eq!(q(&s, &[("make", "honda"), ("max_price", "5000")]), vec![0]);
    }

    #[test]
    fn keyword_search_compiles() {
        let s = mini_site();
        assert_eq!(q(&s, &[("q", "runs great")]), vec![1]);
        assert_eq!(q(&s, &[("q", "civic")]), vec![0]);
    }

    #[test]
    fn empty_and_any_values_unconstrained() {
        let s = mini_site();
        assert_eq!(q(&s, &[("make", ""), ("q", "  ")]).len(), 3);
        assert_eq!(q(&s, &[("make", "any")]).len(), 3);
    }

    #[test]
    fn unknown_params_ignored() {
        let s = mini_site();
        assert_eq!(q(&s, &[("bogus", "1"), ("page", "3")]).len(), 3);
    }

    #[test]
    fn invalid_typed_value_invalidates() {
        let s = mini_site();
        let params = vec![("zip".to_string(), "not-a-zip".to_string())];
        assert_eq!(s.compile_query(&params), CompiledQuery::Invalid);
    }

    #[test]
    fn hidden_imposes_no_constraint() {
        let s = mini_site();
        assert_eq!(q(&s, &[("lang", "en")]).len(), 3);
    }

    #[test]
    fn form_roundtrips_through_extractor() {
        let s = mini_site();
        let html = s.render_form();
        let doc = deepweb_html::Document::parse(&html);
        let forms = deepweb_html::extract_forms(&doc);
        assert_eq!(forms.len(), 1);
        let f = &forms[0];
        assert_eq!(f.action, "/results");
        assert_eq!(f.inputs.len(), 6);
        // Select options include distinct makes.
        match &f.input("make").unwrap().kind {
            deepweb_html::WidgetKind::SelectMenu { options } => {
                assert_eq!(
                    options,
                    &vec!["".to_string(), "ford".into(), "honda".into()]
                );
            }
            k => panic!("unexpected {k:?}"),
        }
    }

    #[test]
    fn dependent_options_render_script() {
        let mut s = mini_site();
        s.form.dependent = Some(DependentOptions {
            controller: "make".into(),
            dependent: "model".into(),
            map: vec![("honda".into(), vec!["civic".into(), "accord".into()])],
        });
        let html = s.render_form();
        assert!(html.contains("dependentOptions"));
        assert!(html.contains("\"honda\":[\"civic\",\"accord\"]"));
    }

    #[test]
    fn hostile_form_carries_junk_widgets_but_same_backend() {
        let mut s = mini_site();
        s.hostile = true;
        let html = s.render_form();
        let doc = deepweb_html::Document::parse(&html);
        let f = &deepweb_html::extract_forms(&doc)[0];
        // Absolute action + inline handler.
        assert!(f.action.starts_with("http://usedcars-000.sim/"));
        assert!(f.attrs.iter().any(|(k, _)| k == "onsubmit"));
        // Junk widgets present in the markup...
        let token = s.hostile_token();
        assert!(token.len() >= 20);
        assert!(matches!(
            &f.input("csrf_token").unwrap().kind,
            deepweb_html::WidgetKind::Hidden { value } if *value == token
        ));
        assert!(f.input("password").is_some());
        assert!(matches!(
            f.input("upload").unwrap().kind,
            deepweb_html::WidgetKind::FileUpload
        ));
        // ...and every honest input still extracted.
        for name in ["make", "min_price", "max_price", "zip", "q", "lang"] {
            assert!(f.input(name).is_some(), "honest input {name} lost");
        }
        // The backend ignores the junk params entirely.
        assert_eq!(
            q(
                &s,
                &[
                    ("csrf_token", "wrong"),
                    ("password", "1234"),
                    ("promo", "x")
                ]
            )
            .len(),
            3
        );
        // Rendering is deterministic.
        assert_eq!(html, s.render_form());
    }

    #[test]
    fn effective_inputs_exclude_hidden() {
        let s = mini_site();
        assert_eq!(
            s.effective_inputs(),
            vec!["make", "min_price", "max_price", "zip", "q"]
        );
    }
}
