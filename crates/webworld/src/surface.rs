//! Surface-web generation.
//!
//! Three kinds of surface content, each serving a paper argument:
//!
//! 1. **SEO'd popular pages** — review/fan pages about head topics (popular
//!    car models, cuisines). These are why deep-web content adds little for
//!    head queries (§3.2): the surface web already covers them.
//! 2. **Data-table pages** — pages carrying relational HTML tables, the raw
//!    input of the WebTables/ACSDb pipeline (§6). Headers use synonymous
//!    attribute variants so the synonym service has something to learn.
//! 3. **The directory** — `dir.sim`, a hub linking every host: the crawler's
//!    seed.

use crate::server::SurfacePage;
use crate::vocab;
use deepweb_common::derive_rng_n;
use deepweb_html::PageBuilder;
use rand::seq::SliceRandom;
use rand::Rng;

/// Attribute-name variants per concept: the ground truth for the synonym
/// service (E10). Each generated table picks one variant per concept.
pub fn attribute_synonym_pools() -> Vec<Vec<&'static str>> {
    vec![
        vec!["make", "manufacturer", "brand"],
        vec!["model", "car model"],
        vec!["price", "cost", "asking price"],
        vec!["year", "model year"],
        vec!["mileage", "miles", "odometer"],
        vec!["city", "town", "location"],
        vec!["zip", "zipcode", "postal code"],
        vec!["author", "writer"],
        vec!["title", "name"],
        vec!["genre", "category"],
        vec!["salary", "pay", "compensation"],
        vec!["cuisine", "food type"],
        vec!["bedrooms", "beds"],
    ]
}

/// Schema templates (as indexes into [`attribute_synonym_pools`]) that data
/// tables instantiate; co-occurrence of these concepts is what the ACSDb's
/// auto-complete learns.
const SCHEMA_TEMPLATES: &[&[usize]] = &[
    &[0, 1, 2, 3],  // make, model, price, year     (cars)
    &[0, 1, 2, 4],  // make, model, price, mileage
    &[0, 1, 3],     // make, model, year
    &[8, 7, 9],     // title, author, genre          (books)
    &[8, 7, 9, 3],  // title, author, genre, year
    &[5, 6],        // city, zip                     (geo)
    &[5, 6, 2],     // city, zip, price
    &[8, 10, 5],    // title, salary, city           (jobs)
    &[8, 11, 5],    // title, cuisine, city          (restaurants)
    &[12, 2, 5, 6], // bedrooms, price, city, zip    (real estate)
];

/// Generate the SEO'd popular-topic pages for head queries.
pub fn popular_pages(seed: u64, num_hosts: usize) -> Vec<SurfacePage> {
    let mut pages = Vec::new();
    let makes = vocab::car_makes();
    let cuisines = vocab::cuisines();
    let cities = vocab::us_cities();
    let lex = vocab::lexicon("en", 300, seed);
    for k in 0..num_hosts {
        let host = format!("web-{k:03}.sim");
        let mut rng = derive_rng_n(seed, "surface-popular", k as u64);
        let n_pages = rng.gen_range(3..=8);
        let mut links = Vec::new();
        for p in 0..n_pages {
            let path = format!("/p{p}");
            // Head-topic content: reviews of popular makes/models, cuisine
            // guides — redundant with deep-web head content by design.
            let (make, models) = makes.choose(&mut rng).expect("nonempty");
            let model = models.choose(&mut rng).expect("nonempty");
            let cuisine = cuisines.choose(&mut rng).expect("nonempty");
            let city = cities.choose(&mut rng).expect("nonempty");
            let filler = vocab::sentence(&lex, 20, &mut rng);
            let mut pb = PageBuilder::new(&format!("{make} {model} review"));
            pb.h1(&format!("{make} {model} review and buying guide"));
            pb.p(&format!(
                "everything about the {make} {model}: pricing, reliability, \
                 and where to find one in {city}. also try {cuisine} restaurants. {filler}"
            ));
            pb.link("/", "home");
            pages.push(SurfacePage {
                host: host.clone(),
                path: path.clone(),
                html: pb.build(),
            });
            links.push((path, format!("{make} {model} review")));
        }
        let mut pb = PageBuilder::new(&format!("{host} reviews"));
        pb.h1("reviews and guides");
        pb.link_list(&links);
        pages.push(SurfacePage {
            host,
            path: "/".into(),
            html: pb.build(),
        });
    }
    pages
}

/// Generate data-table pages for the WebTables pipeline.
pub fn table_pages(seed: u64, num_hosts: usize) -> Vec<SurfacePage> {
    let mut pages = Vec::new();
    let pools = attribute_synonym_pools();
    let makes = vocab::car_makes();
    let cities = vocab::us_cities();
    let lex = vocab::lexicon("en", 200, seed);
    for k in 0..num_hosts {
        let host = format!("data-{k:03}.sim");
        let mut rng = derive_rng_n(seed, "surface-tables", k as u64);
        let n_pages = rng.gen_range(2..=5);
        let mut links = Vec::new();
        for p in 0..n_pages {
            let path = format!("/t{p}");
            let template = SCHEMA_TEMPLATES.choose(&mut rng).expect("nonempty");
            // One synonym variant per concept for this table.
            let header: Vec<String> = template
                .iter()
                .map(|&ci| (*pools[ci].choose(&mut rng).expect("nonempty")).to_string())
                .collect();
            let n_rows = rng.gen_range(4..=15);
            let rows: Vec<Vec<String>> = (0..n_rows)
                .map(|_| {
                    template
                        .iter()
                        .map(|&ci| cell_value(ci, &makes, &cities, &mut rng))
                        .collect()
                })
                .collect();
            let mut pb = PageBuilder::new(&format!("dataset {p} on {host}"));
            pb.h1(&format!("dataset {p}"));
            pb.p(&vocab::sentence(&lex, 10, &mut rng));
            let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
            pb.table(&header_refs, &rows);
            pages.push(SurfacePage {
                host: host.clone(),
                path: path.clone(),
                html: pb.build(),
            });
            links.push((path, format!("dataset {p}")));
        }
        let mut pb = PageBuilder::new(&format!("{host} datasets"));
        pb.h1("open datasets");
        pb.link_list(&links);
        pages.push(SurfacePage {
            host,
            path: "/".into(),
            html: pb.build(),
        });
    }
    pages
}

/// Plausible cell value for concept index `ci` in [`attribute_synonym_pools`].
fn cell_value(
    ci: usize,
    makes: &[(&'static str, Vec<&'static str>)],
    cities: &[String],
    rng: &mut rand::rngs::StdRng,
) -> String {
    match ci {
        0 => makes.choose(rng).expect("nonempty").0.to_string(),
        1 => {
            let (_, models) = makes.choose(rng).expect("nonempty");
            (*models.choose(rng).expect("nonempty")).to_string()
        }
        2 => format!("${}", rng.gen_range(5..=500) * 100),
        3 => rng.gen_range(1985..=2008).to_string(),
        4 => (rng.gen_range(10..=200) * 1000).to_string(),
        5 => cities.choose(rng).cloned().unwrap_or_default(),
        6 => format!("{:05}", rng.gen_range(10000..99999)),
        7 => (*vocab::surnames().choose(rng).expect("nonempty")).to_string(),
        8 => format!("item {}", rng.gen_range(0..10_000)),
        9 => (*vocab::book_genres().choose(rng).expect("nonempty")).to_string(),
        10 => format!("${}", rng.gen_range(25_000..=180_000)),
        11 => (*vocab::cuisines().choose(rng).expect("nonempty")).to_string(),
        12 => rng.gen_range(1..=6).to_string(),
        _ => String::new(),
    }
}

/// Build the `dir.sim` hub page linking every host's home page.
pub fn directory_page(hosts: &[String]) -> SurfacePage {
    let mut pb = PageBuilder::new("web directory");
    pb.h1("directory of sites");
    let links: Vec<(String, String)> = hosts
        .iter()
        .map(|h| (format!("http://{h}/"), h.clone()))
        .collect();
    pb.link_list(&links);
    SurfacePage {
        host: "dir.sim".into(),
        path: "/".into(),
        html: pb.build(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepweb_html::{extract_tables, Document};

    #[test]
    fn popular_pages_have_home_and_content() {
        let pages = popular_pages(1, 3);
        let homes: Vec<_> = pages.iter().filter(|p| p.path == "/").collect();
        assert_eq!(homes.len(), 3);
        assert!(pages.len() > 6);
        assert!(pages.iter().any(|p| p.html.contains("review")));
    }

    #[test]
    fn table_pages_contain_extractable_tables() {
        let pages = table_pages(1, 2);
        let with_tables: Vec<_> = pages.iter().filter(|p| p.path != "/").collect();
        assert!(!with_tables.is_empty());
        for p in with_tables {
            let doc = Document::parse(&p.html);
            let tables = extract_tables(&doc);
            assert_eq!(tables.len(), 1);
            assert!(!tables[0].header.is_empty());
            assert!(tables[0].is_rectangular());
        }
    }

    #[test]
    fn synonym_variants_actually_vary() {
        let pages = table_pages(1, 6);
        let mut price_like = std::collections::BTreeSet::new();
        for p in &pages {
            for t in extract_tables(&Document::parse(&p.html)) {
                for h in &t.header {
                    if h == "price" || h == "cost" || h == "asking price" {
                        price_like.insert(h.clone());
                    }
                }
            }
        }
        assert!(
            price_like.len() >= 2,
            "want ≥2 price synonyms in corpus, got {price_like:?}"
        );
    }

    #[test]
    fn directory_links_everything() {
        let d = directory_page(&["a.sim".into(), "b.sim".into()]);
        assert!(d.html.contains("http://a.sim/"));
        assert!(d.html.contains("http://b.sim/"));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = popular_pages(9, 2);
        let b = popular_pages(9, 2);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.html == y.html));
    }
}
