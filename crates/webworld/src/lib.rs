//! # deepweb-webworld
//!
//! The synthetic web: deterministic generation of deep-web sites (HTML forms
//! over relational backends), a surface web (SEO'd popular pages, data-table
//! pages, a directory hub), an HTTP-like server with per-host load
//! accounting, and full ground truth for every experiment.
//!
//! This crate is the substitution for the live web the paper crawled
//! (DESIGN.md §2): crawlers see only URLs and HTML; the experiments also get
//! [`genweb::GroundTruth`] to score against.

#![warn(missing_docs)]

pub mod datagen;
pub mod faults;
pub mod fetch;
pub mod genweb;
pub mod render;
pub mod server;
pub mod site;
pub mod surface;
pub mod vocab;

pub use faults::{FaultConfig, FaultKind, FaultStats, FaultyFetcher};
pub use fetch::{http_error, Fetcher, Response};
pub use genweb::{generate, grow_site, GroundTruth, InputTruth, SiteTruth, WebConfig, World};
pub use server::{SurfacePage, WebServer};
pub use site::{
    Binding, CompiledQuery, DependentOptions, DomainKind, FormSpec, InputSpec, RenderStyle, Site,
};
