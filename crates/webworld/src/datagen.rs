//! Per-domain data and form generation.
//!
//! Each builder returns a backing [`Table`] and the [`FormSpec`] of the
//! site's search form. Input *names* and *labels* are drawn from realistic
//! variant pools (`min_price` vs `price_from` vs `lowprice`...) so that the
//! surfacer's pattern mining (paper §4.2: "large collections of forms can be
//! mined to identify patterns") faces genuine variety.

use crate::site::{Binding, DependentOptions, FormSpec, InputSpec};
use crate::vocab;
use deepweb_store::{Date, Schema, Table, Value, ValueType};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Shared generation context for one site.
pub struct GenCtx<'a> {
    /// Site-specific RNG stream.
    pub rng: &'a mut StdRng,
    /// Language code.
    pub lang: &'a str,
    /// Filler lexicon for the language.
    pub lexicon: &'a [String],
    /// Zip pool shared across the web.
    pub zips: &'a [String],
    /// City pool shared across the web.
    pub cities: &'a [String],
    /// Number of records to generate.
    pub n_records: usize,
}

impl GenCtx<'_> {
    fn filler(&mut self, n: usize) -> String {
        vocab::sentence(self.lexicon, n, self.rng)
    }

    fn zip(&mut self) -> String {
        self.zips
            .choose(self.rng)
            .cloned()
            .unwrap_or_else(|| "00000".into())
    }

    fn city(&mut self) -> String {
        self.cities
            .choose(self.rng)
            .cloned()
            .unwrap_or_else(|| "springfield".into())
    }

    fn date(&mut self) -> Date {
        Date::new(
            self.rng.gen_range(1995..=2008),
            self.rng.gen_range(1..=12),
            self.rng.gen_range(1..=28),
        )
        .expect("generated date valid")
    }

    fn flip(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }
}

/// Range-pair name variants: `(min_name, max_name, label_stem)`.
fn range_names(rng: &mut StdRng, stem: &str) -> (String, String) {
    let variants = [
        (format!("min_{stem}"), format!("max_{stem}")),
        (format!("{stem}_min"), format!("{stem}_max")),
        (format!("min{stem}"), format!("max{stem}")),
        (format!("{stem}_from"), format!("{stem}_to")),
        (format!("low_{stem}"), format!("high_{stem}")),
    ];
    variants.choose(rng).cloned().expect("non-empty variants")
}

fn zip_name(rng: &mut StdRng) -> (String, String) {
    let names = ["zip", "zipcode", "zip_code", "postalcode"];
    let labels = ["zip code:", "zip:", "postal code:", "enter zip:"];
    (
        (*names.choose(rng).expect("nonempty")).to_string(),
        (*labels.choose(rng).expect("nonempty")).to_string(),
    )
}

fn city_name(rng: &mut StdRng) -> (String, String) {
    let names = ["city", "town", "location"];
    let labels = ["city:", "city name:", "location:"];
    (
        (*names.choose(rng).expect("nonempty")).to_string(),
        (*labels.choose(rng).expect("nonempty")).to_string(),
    )
}

fn keyword_name(rng: &mut StdRng) -> (String, String) {
    let names = ["q", "query", "keywords", "search", "terms"];
    let labels = ["keywords:", "search:", "find:", "search for:"];
    (
        (*names.choose(rng).expect("nonempty")).to_string(),
        (*labels.choose(rng).expect("nonempty")).to_string(),
    )
}

fn push_range(
    inputs: &mut Vec<InputSpec>,
    rng: &mut StdRng,
    stem: &str,
    col: usize,
    ty: ValueType,
) {
    let (min_n, max_n) = range_names(rng, stem);
    inputs.push(InputSpec {
        name: min_n,
        label: format!("min {stem}:"),
        binding: Binding::RangeMin { col, ty },
    });
    inputs.push(InputSpec {
        name: max_n,
        label: format!("max {stem}:"),
        binding: Binding::RangeMax { col, ty },
    });
}

/// Used-car classifieds.
pub fn used_cars(ctx: &mut GenCtx<'_>) -> (Table, FormSpec) {
    let schema = Schema::new(vec![
        ("make", ValueType::Text),
        ("model", ValueType::Text),
        ("year", ValueType::Int),
        ("price", ValueType::Money),
        ("mileage", ValueType::Int),
        ("city", ValueType::Text),
        ("zip", ValueType::Zip),
        ("description", ValueType::Text),
    ])
    .expect("schema");
    let makes = vocab::car_makes();
    // The last make never appears as an actual listing — only in cross-make
    // remarks and surface review pages. This reproduces the scarcity that
    // makes the paper's §5.1 false-positive scenario possible ("used ford
    // focus 1993" finding a Honda page).
    let listed_makes = &makes[..makes.len() - 1];
    let mut t = Table::new(schema);
    for _ in 0..ctx.n_records {
        let (make, models) = listed_makes.choose(ctx.rng).expect("nonempty");
        let model = models.choose(ctx.rng).expect("nonempty");
        let year = ctx.rng.gen_range(1988..=2008);
        let price = ctx.rng.gen_range(5..=500) * 100; // dollars
        let mileage = ctx.rng.gen_range(10..=200) * 1000;
        let city = ctx.city();
        let zip = ctx.zip();
        let filler = ctx.filler(6);
        let mut desc = format!("used {make} {model} {year} in {city} {filler}");
        // Occasionally mention a competitor — the paper's §5.1 confounder
        // ("has better mileage than the Ford Focus" on a Honda page).
        if ctx.flip(0.2) {
            let (other_make, other_models) = makes.choose(ctx.rng).expect("nonempty");
            let other_model = other_models.choose(ctx.rng).expect("nonempty");
            if other_make != make {
                desc.push_str(&format!(
                    " better mileage than the {other_make} {other_model}"
                ));
            }
        }
        t.insert(vec![
            Value::Text((*make).to_string()),
            Value::Text((*model).to_string()),
            Value::Int(year),
            Value::Money(price * 100),
            Value::Int(mileage),
            Value::Text(city),
            Value::Zip(zip),
            Value::Text(desc),
        ])
        .expect("row matches schema");
    }

    let mut inputs = vec![InputSpec {
        name: "make".into(),
        label: "make:".into(),
        binding: Binding::Select { col: 0 },
    }];
    let mut dependent = None;
    if ctx.flip(0.4) {
        inputs.push(InputSpec {
            name: "model".into(),
            label: "model:".into(),
            binding: Binding::Select { col: 1 },
        });
        dependent = Some(DependentOptions {
            controller: "make".into(),
            dependent: "model".into(),
            map: makes
                .iter()
                .map(|(m, ms)| {
                    (
                        (*m).to_string(),
                        ms.iter().map(|s| (*s).to_string()).collect(),
                    )
                })
                .collect(),
        });
    }
    if ctx.flip(0.8) {
        push_range(&mut inputs, ctx.rng, "price", 3, ValueType::Money);
    }
    if ctx.flip(0.4) {
        push_range(&mut inputs, ctx.rng, "year", 2, ValueType::Int);
    }
    if ctx.flip(0.5) {
        let (n, l) = zip_name(ctx.rng);
        inputs.push(InputSpec {
            name: n,
            label: l,
            binding: Binding::TypedText {
                col: 6,
                ty: ValueType::Zip,
            },
        });
    }
    if ctx.flip(0.3) {
        let (n, l) = city_name(ctx.rng);
        inputs.push(InputSpec {
            name: n,
            label: l,
            binding: Binding::TypedText {
                col: 5,
                ty: ValueType::Text,
            },
        });
    }
    if ctx.flip(0.8) {
        let (n, l) = keyword_name(ctx.rng);
        inputs.push(InputSpec {
            name: n,
            label: l,
            binding: Binding::KeywordSearch,
        });
    }
    inputs.push(InputSpec {
        name: "lang".into(),
        label: String::new(),
        binding: Binding::Hidden {
            value: ctx.lang.to_string(),
        },
    });
    (
        t,
        FormSpec {
            action: "/results".into(),
            post: false,
            inputs,
            dependent,
        },
    )
}

/// Real-estate listings.
pub fn real_estate(ctx: &mut GenCtx<'_>) -> (Table, FormSpec) {
    let schema = Schema::new(vec![
        ("type", ValueType::Text),
        ("bedrooms", ValueType::Int),
        ("price", ValueType::Money),
        ("city", ValueType::Text),
        ("zip", ValueType::Zip),
        ("listed", ValueType::Date),
        ("description", ValueType::Text),
    ])
    .expect("schema");
    let types = ["house", "condo", "apartment", "studio", "loft", "townhouse"];
    let mut t = Table::new(schema);
    for _ in 0..ctx.n_records {
        let ty = types.choose(ctx.rng).expect("nonempty");
        let beds = ctx.rng.gen_range(1..=6);
        let price = ctx.rng.gen_range(500..=20_000) * 100;
        let city = ctx.city();
        let zip = ctx.zip();
        let listed = ctx.date();
        let filler = ctx.filler(6);
        let desc = format!("{beds} bedroom {ty} in {city} {filler}");
        t.insert(vec![
            Value::Text((*ty).to_string()),
            Value::Int(beds),
            Value::Money(price * 100),
            Value::Text(city),
            Value::Zip(zip),
            Value::Date(listed),
            Value::Text(desc),
        ])
        .expect("row matches schema");
    }
    let mut inputs = vec![InputSpec {
        name: "type".into(),
        label: "property type:".into(),
        binding: Binding::Select { col: 0 },
    }];
    if ctx.flip(0.6) {
        inputs.push(InputSpec {
            name: "bedrooms".into(),
            label: "bedrooms:".into(),
            binding: Binding::Select { col: 1 },
        });
    }
    if ctx.flip(0.8) {
        push_range(&mut inputs, ctx.rng, "price", 2, ValueType::Money);
    }
    if ctx.flip(0.6) {
        let (n, l) = zip_name(ctx.rng);
        inputs.push(InputSpec {
            name: n,
            label: l,
            binding: Binding::TypedText {
                col: 4,
                ty: ValueType::Zip,
            },
        });
    }
    if ctx.flip(0.4) {
        let (n, l) = city_name(ctx.rng);
        inputs.push(InputSpec {
            name: n,
            label: l,
            binding: Binding::TypedText {
                col: 3,
                ty: ValueType::Text,
            },
        });
    }
    if ctx.flip(0.3) {
        inputs.push(InputSpec {
            name: "listed_after".into(),
            label: "listed after (yyyy-mm-dd):".into(),
            binding: Binding::RangeMin {
                col: 5,
                ty: ValueType::Date,
            },
        });
    }
    if ctx.flip(0.7) {
        let (n, l) = keyword_name(ctx.rng);
        inputs.push(InputSpec {
            name: n,
            label: l,
            binding: Binding::KeywordSearch,
        });
    }
    (
        t,
        FormSpec {
            action: "/results".into(),
            post: false,
            inputs,
            dependent: None,
        },
    )
}

/// Job listings.
pub fn jobs(ctx: &mut GenCtx<'_>) -> (Table, FormSpec) {
    let schema = Schema::new(vec![
        ("category", ValueType::Text),
        ("title", ValueType::Text),
        ("city", ValueType::Text),
        ("salary", ValueType::Money),
        ("posted", ValueType::Date),
        ("description", ValueType::Text),
    ])
    .expect("schema");
    let cats = vocab::job_titles();
    let mut t = Table::new(schema);
    for _ in 0..ctx.n_records {
        let cat = cats.choose(ctx.rng).expect("nonempty");
        let seniority = ["junior", "senior", "lead", "staff"]
            .choose(ctx.rng)
            .expect("nonempty");
        let title = format!("{seniority} {cat}");
        let city = ctx.city();
        let salary = ctx.rng.gen_range(250..=1800) * 10_000; // cents
        let posted = ctx.date();
        let filler = ctx.filler(7);
        let desc = format!("{title} position in {city} {filler}");
        t.insert(vec![
            Value::Text((*cat).to_string()),
            Value::Text(title),
            Value::Text(city),
            Value::Money(salary),
            Value::Date(posted),
            Value::Text(desc),
        ])
        .expect("row matches schema");
    }
    let mut inputs = vec![InputSpec {
        name: "category".into(),
        label: "job category:".into(),
        binding: Binding::Select { col: 0 },
    }];
    if ctx.flip(0.6) {
        push_range(&mut inputs, ctx.rng, "salary", 3, ValueType::Money);
    }
    if ctx.flip(0.5) {
        let (n, l) = city_name(ctx.rng);
        inputs.push(InputSpec {
            name: n,
            label: l,
            binding: Binding::TypedText {
                col: 2,
                ty: ValueType::Text,
            },
        });
    }
    let (n, l) = keyword_name(ctx.rng);
    inputs.push(InputSpec {
        name: n,
        label: l,
        binding: Binding::KeywordSearch,
    });
    (
        t,
        FormSpec {
            action: "/results".into(),
            post: false,
            inputs,
            dependent: None,
        },
    )
}

/// Restaurant guides.
pub fn restaurants(ctx: &mut GenCtx<'_>) -> (Table, FormSpec) {
    let schema = Schema::new(vec![
        ("name", ValueType::Text),
        ("cuisine", ValueType::Text),
        ("city", ValueType::Text),
        ("zip", ValueType::Zip),
        ("price_level", ValueType::Int),
        ("description", ValueType::Text),
    ])
    .expect("schema");
    let cuisines = vocab::cuisines();
    let mut t = Table::new(schema);
    for i in 0..ctx.n_records {
        let cuisine = cuisines.choose(ctx.rng).expect("nonempty");
        let name = format!(
            "{} {}",
            ctx.filler(1),
            ["kitchen", "bistro", "cafe", "grill", "house"]
                .choose(ctx.rng)
                .expect("nonempty")
        );
        let city = ctx.city();
        let zip = ctx.zip();
        let level = ctx.rng.gen_range(1..=4);
        let filler = ctx.filler(5);
        let desc = format!("{cuisine} restaurant number {i} in {city} {filler}");
        t.insert(vec![
            Value::Text(name),
            Value::Text((*cuisine).to_string()),
            Value::Text(city),
            Value::Zip(zip),
            Value::Int(level),
            Value::Text(desc),
        ])
        .expect("row matches schema");
    }
    let mut inputs = vec![InputSpec {
        name: "cuisine".into(),
        label: "cuisine:".into(),
        binding: Binding::Select { col: 1 },
    }];
    if ctx.flip(0.6) {
        let (n, l) = zip_name(ctx.rng);
        inputs.push(InputSpec {
            name: n,
            label: l,
            binding: Binding::TypedText {
                col: 3,
                ty: ValueType::Zip,
            },
        });
    }
    if ctx.flip(0.5) {
        inputs.push(InputSpec {
            name: "price_level".into(),
            label: "price level:".into(),
            binding: Binding::Select { col: 4 },
        });
    }
    if ctx.flip(0.8) {
        let (n, l) = keyword_name(ctx.rng);
        inputs.push(InputSpec {
            name: n,
            label: l,
            binding: Binding::KeywordSearch,
        });
    }
    (
        t,
        FormSpec {
            action: "/results".into(),
            post: false,
            inputs,
            dependent: None,
        },
    )
}

/// Store locators: the pure typed-input site (paper §4.1: "we do not need to
/// know what the form is about ... all we need to know is that the text box
/// accepts zip code values").
pub fn store_locator(ctx: &mut GenCtx<'_>) -> (Table, FormSpec) {
    let schema = Schema::new(vec![
        ("store", ValueType::Text),
        ("street", ValueType::Text),
        ("city", ValueType::Text),
        ("zip", ValueType::Zip),
        ("opened", ValueType::Date),
    ])
    .expect("schema");
    let streets = vocab::streets();
    let mut t = Table::new(schema);
    for i in 0..ctx.n_records {
        let street = streets.choose(ctx.rng).expect("nonempty");
        let number = ctx.rng.gen_range(1..=999);
        let city = ctx.city();
        let zip = ctx.zip();
        t.insert(vec![
            Value::Text(format!("store {i}")),
            Value::Text(format!("{number} {street} street")),
            Value::Text(city),
            Value::Zip(zip),
            Value::Date(ctx.date()),
        ])
        .expect("row matches schema");
    }
    let (n, l) = zip_name(ctx.rng);
    let mut inputs = vec![InputSpec {
        name: n,
        label: l,
        binding: Binding::TypedText {
            col: 3,
            ty: ValueType::Zip,
        },
    }];
    if ctx.flip(0.8) {
        inputs.push(InputSpec {
            name: "radius".into(),
            label: "radius (miles):".into(),
            binding: Binding::Ignored {
                options: vec!["10".into(), "25".into(), "50".into()],
            },
        });
    }
    (
        t,
        FormSpec {
            action: "/results".into(),
            post: false,
            inputs,
            dependent: None,
        },
    )
}

/// Government / NGO portals: keyword-searchable document stores.
pub fn government(ctx: &mut GenCtx<'_>) -> (Table, FormSpec) {
    let schema = Schema::new(vec![
        ("doc_type", ValueType::Text),
        ("year", ValueType::Int),
        ("title", ValueType::Text),
        ("body", ValueType::Text),
    ])
    .expect("schema");
    let types = vocab::gov_doc_types();
    let mut t = Table::new(schema);
    for i in 0..ctx.n_records {
        let ty = types.choose(ctx.rng).expect("nonempty");
        let year = ctx.rng.gen_range(1990..=2008);
        let subject = ctx.filler(2);
        let title = format!("{ty} {i} concerning {subject}");
        let body = format!("{} {}", subject, ctx.filler(12));
        t.insert(vec![
            Value::Text((*ty).to_string()),
            Value::Int(year),
            Value::Text(title),
            Value::Text(body),
        ])
        .expect("row matches schema");
    }
    let (n, l) = keyword_name(ctx.rng);
    let mut inputs = vec![InputSpec {
        name: n,
        label: l,
        binding: Binding::KeywordSearch,
    }];
    if ctx.flip(0.7) {
        inputs.push(InputSpec {
            name: "doc_type".into(),
            label: "document type:".into(),
            binding: Binding::Select { col: 0 },
        });
    }
    if ctx.flip(0.5) {
        inputs.push(InputSpec {
            name: "year".into(),
            label: "year:".into(),
            binding: Binding::Select { col: 1 },
        });
    }
    (
        t,
        FormSpec {
            action: "/results".into(),
            post: false,
            inputs,
            dependent: None,
        },
    )
}

/// Library catalogues: keyword box plus an exact-match author text box (an
/// *untyped* large-domain input, paper §4.1: "people names, ISBN values").
pub fn library(ctx: &mut GenCtx<'_>) -> (Table, FormSpec) {
    let schema = Schema::new(vec![
        ("title", ValueType::Text),
        ("author", ValueType::Text),
        ("genre", ValueType::Text),
        ("year", ValueType::Int),
    ])
    .expect("schema");
    let genres = vocab::book_genres();
    let authors = vocab::surnames();
    let mut t = Table::new(schema);
    for _ in 0..ctx.n_records {
        let genre = genres.choose(ctx.rng).expect("nonempty");
        let author = authors.choose(ctx.rng).expect("nonempty");
        let subject = ctx.filler(3);
        let title = format!("the {subject} {genre}");
        t.insert(vec![
            Value::Text(title),
            Value::Text((*author).to_string()),
            Value::Text((*genre).to_string()),
            Value::Int(ctx.rng.gen_range(1950..=2008)),
        ])
        .expect("row matches schema");
    }
    let (n, l) = keyword_name(ctx.rng);
    let mut inputs = vec![InputSpec {
        name: n,
        label: l,
        binding: Binding::KeywordSearch,
    }];
    if ctx.flip(0.8) {
        inputs.push(InputSpec {
            name: "genre".into(),
            label: "genre:".into(),
            binding: Binding::Select { col: 2 },
        });
    }
    if ctx.flip(0.3) {
        inputs.push(InputSpec {
            name: "author".into(),
            label: "author surname:".into(),
            binding: Binding::TypedText {
                col: 1,
                ty: ValueType::Text,
            },
        });
    }
    (
        t,
        FormSpec {
            action: "/results".into(),
            post: false,
            inputs,
            dependent: None,
        },
    )
}

/// Media search: the database-selection correlation (paper §4.2) — one select
/// menu chooses the underlying database, one text box takes keywords, and the
/// productive keyword pools per category are disjoint.
pub fn media_search(ctx: &mut GenCtx<'_>) -> (Table, FormSpec) {
    let schema = Schema::new(vec![
        ("category", ValueType::Text),
        ("title", ValueType::Text),
        ("year", ValueType::Int),
        ("description", ValueType::Text),
    ])
    .expect("schema");
    let cats = vocab::media_categories();
    let mut t = Table::new(schema);
    for _ in 0..ctx.n_records {
        let (cat, kws) = cats.choose(ctx.rng).expect("nonempty");
        let k1 = kws.choose(ctx.rng).expect("nonempty");
        let k2 = kws.choose(ctx.rng).expect("nonempty");
        let filler = ctx.filler(3);
        let title = format!("{k1} {filler}");
        let desc = format!("a {cat} item featuring {k1} and {k2}");
        t.insert(vec![
            Value::Text((*cat).to_string()),
            Value::Text(title),
            Value::Int(ctx.rng.gen_range(1980..=2008)),
            Value::Text(desc),
        ])
        .expect("row matches schema");
    }
    let (n, l) = keyword_name(ctx.rng);
    let inputs = vec![
        InputSpec {
            name: "category".into(),
            label: "search in:".into(),
            binding: Binding::Select { col: 0 },
        },
        InputSpec {
            name: n,
            label: l,
            binding: Binding::KeywordSearch,
        },
    ];
    (
        t,
        FormSpec {
            action: "/results".into(),
            post: false,
            inputs,
            dependent: None,
        },
    )
}

/// Faculty directories: the fortuitous-query substrate (paper §3.2). Exactly
/// one select input (department); one biography mentions the SIGMOD
/// Innovations Award.
pub fn faculty(ctx: &mut GenCtx<'_>, plant_award: bool) -> (Table, FormSpec) {
    let schema = Schema::new(vec![
        ("department", ValueType::Text),
        ("name", ValueType::Text),
        ("bio", ValueType::Text),
    ])
    .expect("schema");
    let depts = vocab::departments();
    let names = vocab::surnames();
    let mut t = Table::new(schema);
    if plant_award {
        t.insert(vec![
            Value::Text("csail".into()),
            Value::Text("stonebraker".into()),
            Value::Text(
                "professor stonebraker is an mit professor in the csail department \
                 and winner of the sigmod innovations award for database systems"
                    .into(),
            ),
        ])
        .expect("row matches schema");
    }
    for _ in 0..ctx.n_records {
        let dept = depts.choose(ctx.rng).expect("nonempty");
        let name = names.choose(ctx.rng).expect("nonempty");
        let filler = ctx.filler(8);
        let bio = format!("professor {name} of the {dept} department studies {filler}");
        t.insert(vec![
            Value::Text((*dept).to_string()),
            Value::Text((*name).to_string()),
            Value::Text(bio),
        ])
        .expect("row matches schema");
    }
    let inputs = vec![InputSpec {
        name: "department".into(),
        label: "department:".into(),
        binding: Binding::Select { col: 0 },
    }];
    (
        t,
        FormSpec {
            action: "/results".into(),
            post: false,
            inputs,
            dependent: None,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::Binding;
    use deepweb_common::derive_rng;

    fn ctx_fixture(rng: &mut StdRng) -> (Vec<String>, Vec<String>, Vec<String>) {
        let lex = vocab::lexicon("en", 40, 1);
        let zips = vocab::us_zipcodes(1, 50);
        let cities = vocab::us_cities();
        let _ = rng;
        (lex, zips, cities)
    }

    fn make_ctx<'a>(
        rng: &'a mut StdRng,
        lex: &'a [String],
        zips: &'a [String],
        cities: &'a [String],
        n: usize,
    ) -> GenCtx<'a> {
        GenCtx {
            rng,
            lang: "en",
            lexicon: lex,
            zips,
            cities,
            n_records: n,
        }
    }

    #[test]
    fn used_cars_builds_consistent_site() {
        let mut rng = derive_rng(1, "dg-cars");
        let (lex, zips, cities) = ctx_fixture(&mut rng);
        let mut ctx = make_ctx(&mut rng, &lex, &zips, &cities, 30);
        let (t, form) = used_cars(&mut ctx);
        assert_eq!(t.len(), 30);
        assert!(!form.post);
        // Always has a make select.
        assert!(form
            .inputs
            .iter()
            .any(|i| i.name == "make" && matches!(i.binding, Binding::Select { col: 0 })));
    }

    #[test]
    fn all_domains_generate_without_panic() {
        let mut rng = derive_rng(2, "dg-all");
        let (lex, zips, cities) = ctx_fixture(&mut rng);
        for i in 0..8u64 {
            let mut r = derive_rng(i, "dg-domain");
            let mut ctx = make_ctx(&mut r, &lex, &zips, &cities, 20);
            let _ = used_cars(&mut ctx);
            let mut ctx = make_ctx(&mut r, &lex, &zips, &cities, 20);
            let _ = real_estate(&mut ctx);
            let mut ctx = make_ctx(&mut r, &lex, &zips, &cities, 20);
            let _ = jobs(&mut ctx);
            let mut ctx = make_ctx(&mut r, &lex, &zips, &cities, 20);
            let _ = restaurants(&mut ctx);
            let mut ctx = make_ctx(&mut r, &lex, &zips, &cities, 20);
            let _ = store_locator(&mut ctx);
            let mut ctx = make_ctx(&mut r, &lex, &zips, &cities, 20);
            let _ = government(&mut ctx);
            let mut ctx = make_ctx(&mut r, &lex, &zips, &cities, 20);
            let _ = library(&mut ctx);
            let mut ctx = make_ctx(&mut r, &lex, &zips, &cities, 20);
            let _ = media_search(&mut ctx);
            let mut ctx = make_ctx(&mut r, &lex, &zips, &cities, 20);
            let _ = faculty(&mut ctx, false);
        }
    }

    #[test]
    fn faculty_plants_award_bio() {
        let mut rng = derive_rng(3, "dg-fac");
        let (lex, zips, cities) = ctx_fixture(&mut rng);
        let mut ctx = make_ctx(&mut rng, &lex, &zips, &cities, 10);
        let (t, form) = faculty(&mut ctx, true);
        assert_eq!(t.len(), 11);
        let bio = t.row(deepweb_common::RecordId(0))[2].render();
        assert!(bio.contains("sigmod innovations award"));
        assert_eq!(form.inputs.len(), 1);
    }

    #[test]
    fn media_categories_are_separable() {
        let mut rng = derive_rng(4, "dg-media");
        let (lex, zips, cities) = ctx_fixture(&mut rng);
        let mut ctx = make_ctx(&mut rng, &lex, &zips, &cities, 200);
        let (t, _) = media_search(&mut ctx);
        // Software rows should mention software keywords, not movie keywords.
        let mut sw_rows = 0;
        for (_, row) in t.iter() {
            if row[0].render() == "software" {
                sw_rows += 1;
                let desc = row[3].render();
                assert!(
                    !desc.contains("noir") && !desc.contains("western"),
                    "desc={desc}"
                );
            }
        }
        assert!(sw_rows > 10);
    }

    #[test]
    fn store_locator_has_ignored_radius_sometimes() {
        let mut hit = false;
        for seed in 0..20u64 {
            let mut rng = derive_rng(seed, "dg-store");
            let (lex, zips, cities) = ctx_fixture(&mut rng);
            let mut ctx = make_ctx(&mut rng, &lex, &zips, &cities, 10);
            let (_, form) = store_locator(&mut ctx);
            if form
                .inputs
                .iter()
                .any(|i| matches!(i.binding, Binding::Ignored { .. }))
            {
                hit = true;
                break;
            }
        }
        assert!(hit, "radius input should appear within 20 seeds");
    }

    #[test]
    fn range_name_variants_pair_up() {
        for seed in 0..10u64 {
            let mut rng = derive_rng(seed, "dg-range");
            let (a, b) = range_names(&mut rng, "price");
            assert_ne!(a, b);
            assert!(a.contains("price") && b.contains("price"));
        }
    }
}
