//! Whole-web generation: sites, surface pages, directory, ground truth.
//!
//! One [`WebConfig`] describes a web; [`generate`] deterministically expands
//! it into a [`World`]. Benches scale `num_sites` up; unit tests keep it
//! small. Ground truth captures everything the experiments need to score
//! against (true record counts, true input semantics, true range pairs).

use crate::datagen::{self, GenCtx};
use crate::server::WebServer;
use crate::site::{Binding, DomainKind, RenderStyle, Site};
use crate::surface;
use crate::vocab;
use deepweb_common::ids::SiteId;
use deepweb_common::{derive_rng, derive_rng_n, Zipf};
use deepweb_store::{IndexedTable, Table, ValueType};
use rand::seq::SliceRandom;
use rand::Rng;

/// Configuration of a generated web.
#[derive(Clone, Debug)]
pub struct WebConfig {
    /// Master seed; same seed ⇒ byte-identical web.
    pub seed: u64,
    /// Number of deep-web sites.
    pub num_sites: usize,
    /// Number of SEO'd popular-content surface hosts.
    pub popular_hosts: usize,
    /// Number of data-table surface hosts (WebTables input).
    pub table_hosts: usize,
    /// Smallest site size in records.
    pub min_records: usize,
    /// Largest site size in records.
    pub max_records: usize,
    /// Skew of the site-size distribution (`size ∝ 1/rank^skew`).
    pub size_skew: f64,
    /// Fraction of forms using POST (not surfaceable).
    pub post_fraction: f64,
    /// Fraction of sites exposing a `/browse` page.
    pub browse_fraction: f64,
    /// Fraction of sites in English (rest spread over 44 other languages).
    pub english_fraction: f64,
    /// Relative weights of content domains.
    pub domain_weights: Vec<(DomainKind, f64)>,
    /// Page sizes sites choose from.
    pub page_sizes: Vec<usize>,
    /// Fraction of sites generated in hostile mode: broken markup plus junk
    /// form widgets (hidden token, password-named text box, client-side-only
    /// validation, inline handlers, absolute form action). Backends stay
    /// honest, so hostile sites are still surfaceable minus the junk.
    pub hostile_fraction: f64,
}

impl Default for WebConfig {
    fn default() -> Self {
        WebConfig {
            seed: deepweb_common::DEFAULT_SEED,
            num_sites: 40,
            popular_hosts: 8,
            table_hosts: 6,
            min_records: 30,
            max_records: 800,
            size_skew: 0.7,
            post_fraction: 0.08,
            browse_fraction: 0.15,
            english_fraction: 0.75,
            domain_weights: vec![
                (DomainKind::UsedCars, 2.0),
                (DomainKind::RealEstate, 1.5),
                (DomainKind::Jobs, 1.5),
                (DomainKind::Restaurants, 1.2),
                (DomainKind::StoreLocator, 1.0),
                (DomainKind::Government, 2.0),
                (DomainKind::Library, 1.5),
                (DomainKind::MediaSearch, 1.0),
                (DomainKind::Faculty, 0.8),
            ],
            page_sizes: vec![5, 10, 10, 20],
            hostile_fraction: 0.0,
        }
    }
}

/// Ground truth about one input (what the surfacer should discover).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum InputTruth {
    /// A free-keyword search box.
    Search,
    /// A typed text box.
    Typed(ValueType),
    /// A select menu bound to a column.
    Select,
    /// Lower bound of a range; the payload is the partner (max) input name.
    RangeMin(String),
    /// Upper bound of a range; the payload is the partner (min) input name.
    RangeMax(String),
    /// Hidden constant.
    Hidden,
    /// Backend ignores it.
    Ignored,
}

/// Ground truth for a whole site.
#[derive(Clone, Debug)]
pub struct SiteTruth {
    /// Site id.
    pub id: SiteId,
    /// Host name.
    pub host: String,
    /// Content domain.
    pub domain: DomainKind,
    /// Language code.
    pub language: String,
    /// True record count.
    pub records: usize,
    /// True POST-ness.
    pub post: bool,
    /// Results per page.
    pub page_size: usize,
    /// Per-input truth, in form order: `(name, truth)`.
    pub inputs: Vec<(String, InputTruth)>,
    /// True (min,max) range pairs.
    pub range_pairs: Vec<(String, String)>,
    /// Whether the form has a JS-dependent select pair.
    pub has_dependent: bool,
    /// Number of surface-reachable records via `/browse`.
    pub browse_links: usize,
    /// True for hostile-mode sites (broken markup + junk widgets).
    pub hostile: bool,
}

impl SiteTruth {
    /// Names of truly-typed text inputs with their types.
    pub fn typed_inputs(&self) -> Vec<(&str, ValueType)> {
        self.inputs
            .iter()
            .filter_map(|(n, t)| match t {
                InputTruth::Typed(ty) => Some((n.as_str(), *ty)),
                _ => None,
            })
            .collect()
    }

    /// True if the form has any "common typed" input (zip/city/price/date in
    /// a *text box* — the paper's 6.7% statistic, §4.1). Text-typed boxes
    /// count only for the city concept (author boxes are the paper's example
    /// of an *untyped* large-domain input).
    pub fn has_common_typed_input(&self) -> bool {
        self.inputs.iter().any(|(name, t)| match t {
            InputTruth::Typed(ValueType::Zip)
            | InputTruth::Typed(ValueType::Date)
            | InputTruth::Typed(ValueType::Money) => true,
            InputTruth::Typed(ValueType::Text) => {
                matches!(name.as_str(), "city" | "town" | "location")
            }
            _ => false,
        })
    }
}

/// Ground truth for the generated web.
#[derive(Clone, Debug, Default)]
pub struct GroundTruth {
    /// Per-site truths, indexed by `SiteId`.
    pub sites: Vec<SiteTruth>,
    /// Popular surface hosts.
    pub popular_hosts: Vec<String>,
    /// Data-table surface hosts.
    pub table_hosts: Vec<String>,
}

impl GroundTruth {
    /// Total records across all sites.
    pub fn total_records(&self) -> usize {
        self.sites.iter().map(|s| s.records).sum()
    }

    /// Fraction of forms with a true range pair.
    pub fn range_pair_fraction(&self) -> f64 {
        if self.sites.is_empty() {
            return 0.0;
        }
        self.sites
            .iter()
            .filter(|s| !s.range_pairs.is_empty())
            .count() as f64
            / self.sites.len() as f64
    }

    /// Distinct languages present.
    pub fn languages(&self) -> Vec<String> {
        let mut langs: Vec<String> = self.sites.iter().map(|s| s.language.clone()).collect();
        langs.sort();
        langs.dedup();
        langs
    }
}

/// A generated world: the server plus ground truth.
pub struct World {
    /// The servable web.
    pub server: WebServer,
    /// What is actually true about it.
    pub truth: GroundTruth,
}

/// `(per-input truths, (min,max) range pairs)` for a site's form.
type FormTruth = (Vec<(String, InputTruth)>, Vec<(String, String)>);

/// Derive per-input truth from a form spec (+ range pairs).
fn truth_for(site: &Site) -> FormTruth {
    let mut inputs = Vec::new();
    let mut mins: Vec<(usize, String)> = Vec::new(); // col -> name
    let mut pairs = Vec::new();
    for i in &site.form.inputs {
        let t = match &i.binding {
            Binding::KeywordSearch => InputTruth::Search,
            Binding::TypedText { ty, .. } => InputTruth::Typed(*ty),
            Binding::Select { .. } => InputTruth::Select,
            Binding::RangeMin { col, .. } => {
                mins.push((*col, i.name.clone()));
                InputTruth::RangeMin(String::new()) // partner patched below
            }
            Binding::RangeMax { col, .. } => {
                let partner = mins
                    .iter()
                    .find(|(c, _)| c == col)
                    .map(|(_, n)| n.clone())
                    .unwrap_or_default();
                if !partner.is_empty() {
                    pairs.push((partner.clone(), i.name.clone()));
                }
                InputTruth::RangeMax(partner)
            }
            Binding::Hidden { .. } => InputTruth::Hidden,
            Binding::Ignored { .. } => InputTruth::Ignored,
        };
        inputs.push((i.name.clone(), t));
    }
    // Patch RangeMin partners now that pairs are known.
    for (name, t) in &mut inputs {
        if let InputTruth::RangeMin(p) = t {
            if let Some((_, max_n)) = pairs.iter().find(|(min_n, _)| min_n == name) {
                *p = max_n.clone();
            }
        }
    }
    (inputs, pairs)
}

/// Generate a world from a config.
pub fn generate(config: &WebConfig) -> World {
    let seed = config.seed;
    let zips = vocab::us_zipcodes(seed, 300);
    let cities = vocab::us_cities();
    let languages = vocab::languages();
    let weights: Vec<f64> = config.domain_weights.iter().map(|(_, w)| *w).collect();
    let total_w: f64 = weights.iter().sum();

    // Shuffle size ranks so big sites are spread across domains.
    let mut size_ranks: Vec<usize> = (0..config.num_sites).collect();
    size_ranks.shuffle(&mut derive_rng(seed, "genweb-sizes"));

    let mut sites = Vec::with_capacity(config.num_sites);
    let mut truths = Vec::with_capacity(config.num_sites);
    let mut planted_award = false;

    // POST status is stratified, not independently Bernoulli per site: exactly
    // round(num_sites * post_fraction) sites are POST (at least one for any
    // nonzero fraction), chosen by a dedicated shuffle stream. Independent
    // draws can produce zero POST forms in small webs, which breaks the
    // configured fraction's contract (and the POST exclusion experiment that
    // relies on POST forms existing).
    assert!(
        (0.0..=1.0).contains(&config.post_fraction),
        "post_fraction must be in [0, 1], got {}",
        config.post_fraction
    );
    let n_post = (((config.num_sites as f64) * config.post_fraction).round() as usize)
        .max((config.post_fraction > 0.0 && config.num_sites > 0) as usize);
    let mut post_flags = vec![false; config.num_sites];
    for f in post_flags.iter_mut().take(n_post) {
        *f = true;
    }
    post_flags.shuffle(&mut derive_rng(seed, "genweb-post"));

    // Hostile status is stratified the same way: exactly
    // round(num_sites * hostile_fraction) sites (at least one for any nonzero
    // fraction) render broken markup and junk form widgets. Backends stay
    // honest, so the flag changes presentation only, never ground truth.
    assert!(
        (0.0..=1.0).contains(&config.hostile_fraction),
        "hostile_fraction must be in [0, 1], got {}",
        config.hostile_fraction
    );
    let n_hostile = (((config.num_sites as f64) * config.hostile_fraction).round() as usize)
        .max((config.hostile_fraction > 0.0 && config.num_sites > 0) as usize);
    let mut hostile_flags = vec![false; config.num_sites];
    for f in hostile_flags.iter_mut().take(n_hostile) {
        *f = true;
    }
    hostile_flags.shuffle(&mut derive_rng(seed, "genweb-hostile"));

    for (i, &rank) in size_ranks.iter().enumerate() {
        let mut rng = derive_rng_n(seed, "genweb-site", i as u64);
        // Domain by weight.
        let mut pick = rng.gen_range(0.0..total_w);
        let mut domain = config.domain_weights[0].0;
        for (d, w) in &config.domain_weights {
            if pick < *w {
                domain = *d;
                break;
            }
            pick -= w;
        }
        // Language.
        let language = if rng.gen_bool(config.english_fraction) {
            "en".to_string()
        } else {
            (*languages[1..].choose(&mut rng).expect("nonempty")).to_string()
        };
        let lexicon = vocab::lexicon(&language, 120, seed);
        // Size: zipf-ish over shuffled rank.
        let raw = config.max_records as f64 / ((rank + 1) as f64).powf(config.size_skew);
        let n_records = (raw as usize).clamp(config.min_records, config.max_records);

        let mut ctx = GenCtx {
            rng: &mut rng,
            lang: &language,
            lexicon: &lexicon,
            zips: &zips,
            cities: &cities,
            n_records,
        };
        let plant = domain == DomainKind::Faculty && language == "en" && !planted_award;
        let (table, mut form) = match domain {
            DomainKind::UsedCars => datagen::used_cars(&mut ctx),
            DomainKind::RealEstate => datagen::real_estate(&mut ctx),
            DomainKind::Jobs => datagen::jobs(&mut ctx),
            DomainKind::Restaurants => datagen::restaurants(&mut ctx),
            DomainKind::StoreLocator => datagen::store_locator(&mut ctx),
            DomainKind::Government => datagen::government(&mut ctx),
            DomainKind::Library => datagen::library(&mut ctx),
            DomainKind::MediaSearch => datagen::media_search(&mut ctx),
            DomainKind::Faculty => {
                planted_award |= plant;
                datagen::faculty(&mut ctx, plant)
            }
        };
        // The planted award-bio site should stay GET (the paper's fortuitous
        // query walkthrough depends on it being surfaceable), so hand its
        // POST flag to a later site — or surrender it (one fewer POST form)
        // when only earlier sites are GET. The plant keeps its flag when
        // giving it up would empty the POST set (lone flag, or all-POST
        // web): the at-least-one-POST contract outranks the walkthrough.
        if plant && post_flags[i] {
            if let Some(j) = (i + 1..config.num_sites).find(|&j| !post_flags[j]) {
                post_flags.swap(i, j);
            } else if n_post > 1 && n_post < config.num_sites {
                post_flags[i] = false;
            }
        }
        form.post = post_flags[i];
        let page_size = *config
            .page_sizes
            .choose(&mut rng)
            .expect("page_sizes non-empty");
        let style = if rng.gen_bool(0.5) {
            RenderStyle::Table
        } else {
            RenderStyle::List
        };
        let browse_links = if rng.gen_bool(config.browse_fraction) {
            (table.len() / 10).clamp(1, 10)
        } else {
            0
        };
        let site = Site {
            id: SiteId(i as u32),
            host: format!("{}-{:03}.sim", domain.name(), i),
            domain,
            language: language.clone(),
            lexicon,
            table: IndexedTable::build(table),
            form,
            page_size,
            style,
            browse_links,
            hostile: hostile_flags[i],
        };
        let (input_truth, range_pairs) = truth_for(&site);
        truths.push(SiteTruth {
            id: site.id,
            host: site.host.clone(),
            domain,
            language,
            records: site.table.table().len(),
            post: site.form.post,
            page_size,
            inputs: input_truth,
            range_pairs,
            has_dependent: site.form.dependent.is_some(),
            browse_links,
            hostile: site.hostile,
        });
        sites.push(site);
    }

    // Surface web.
    let mut pages = surface::popular_pages(seed, config.popular_hosts);
    pages.extend(surface::table_pages(seed, config.table_hosts));
    let popular_hosts: Vec<String> = (0..config.popular_hosts)
        .map(|k| format!("web-{k:03}.sim"))
        .collect();
    let table_hosts: Vec<String> = (0..config.table_hosts)
        .map(|k| format!("data-{k:03}.sim"))
        .collect();
    let mut all_hosts: Vec<String> = sites.iter().map(|s| s.host.clone()).collect();
    all_hosts.extend(popular_hosts.iter().cloned());
    all_hosts.extend(table_hosts.iter().cloned());
    pages.push(surface::directory_page(&all_hosts));

    World {
        server: WebServer::new(sites, pages),
        truth: GroundTruth {
            sites: truths,
            popular_hosts,
            table_hosts,
        },
    }
}

/// Grow one site's backend by `extra` records, deterministically.
///
/// Fresh rows come from the site's own domain generator (same schema) on a
/// new RNG stream derived from `seed`, the site index and the current record
/// count — so repeated growth steps never replay rows, and the same
/// `(seed, site, size)` state always grows identically. Rows are appended to
/// the backing table, secondary indexes are rebuilt, and ground truth is
/// updated. Site home pages advertise their record count, so a re-prober
/// observes growth as a content-hash delta on `/` without crawling the whole
/// site.
///
/// Returns the site's new record count.
pub fn grow_site(world: &mut World, site_idx: usize, extra: usize, seed: u64) -> usize {
    let current = world
        .server
        .site(SiteId(site_idx as u32))
        .table
        .table()
        .len();
    if extra == 0 {
        return current;
    }
    let zips = vocab::us_zipcodes(seed, 300);
    let cities = vocab::us_cities();
    let site = world.server.site_mut(site_idx);
    let language = site.language.clone();
    let lexicon = site.lexicon.clone();
    let mut rng = derive_rng_n(
        seed,
        "genweb-grow",
        ((site_idx as u64) << 32) | current as u64,
    );
    let mut ctx = GenCtx {
        rng: &mut rng,
        lang: &language,
        lexicon: &lexicon,
        zips: &zips,
        cities: &cities,
        n_records: extra,
    };
    // The generator also produces a form spec; the site keeps its existing
    // one (forms don't change when content grows), only the rows are taken.
    let (fresh, _form) = match site.domain {
        DomainKind::UsedCars => datagen::used_cars(&mut ctx),
        DomainKind::RealEstate => datagen::real_estate(&mut ctx),
        DomainKind::Jobs => datagen::jobs(&mut ctx),
        DomainKind::Restaurants => datagen::restaurants(&mut ctx),
        DomainKind::StoreLocator => datagen::store_locator(&mut ctx),
        DomainKind::Government => datagen::government(&mut ctx),
        DomainKind::Library => datagen::library(&mut ctx),
        DomainKind::MediaSearch => datagen::media_search(&mut ctx),
        DomainKind::Faculty => datagen::faculty(&mut ctx, false),
    };
    let placeholder = IndexedTable::build(Table::new(site.table.table().schema().clone()));
    let mut table = std::mem::replace(&mut site.table, placeholder).into_table();
    for (_, row) in fresh.iter() {
        table
            .insert(row.to_vec())
            .expect("grown rows match the site schema");
    }
    site.table = IndexedTable::build(table);
    let grown = site.table.table().len();
    world.truth.sites[site_idx].records = grown;
    grown
}

/// Convenience: Zipf popularity over the generated sites (rank = SiteId
/// order), used by workload generators.
pub fn site_popularity(num_sites: usize, s: f64) -> Zipf {
    Zipf::new(num_sites.max(1), s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fetch::Fetcher;
    use deepweb_common::Url;

    fn small_world() -> World {
        generate(&WebConfig {
            num_sites: 25,
            ..WebConfig::default()
        })
    }

    #[test]
    fn post_fraction_is_stratified_and_plant_stays_get() {
        for (n, frac) in [(6usize, 0.08f64), (20, 0.15), (40, 0.15), (5, 0.1)] {
            let w = generate(&WebConfig {
                num_sites: n,
                post_fraction: frac,
                ..WebConfig::default()
            });
            let posts = w.truth.sites.iter().filter(|t| t.post).count();
            let expect = (((n as f64) * frac).round() as usize).max(1);
            // The plant may surrender one flag back to GET; never more.
            assert!(
                posts == expect || posts == expect.saturating_sub(1).max(1),
                "n={n} frac={frac}: got {posts} POST sites, expected ~{expect}"
            );
            assert!(
                posts > 0,
                "nonzero fraction must yield at least one POST form"
            );
        }
        // The planted award-bio site stays GET whenever another POST site can
        // take its flag.
        let w = generate(&WebConfig {
            num_sites: 20,
            post_fraction: 0.15,
            ..WebConfig::default()
        });
        let plant = w
            .truth
            .sites
            .iter()
            .find(|t| t.domain == DomainKind::Faculty && t.language == "en");
        if let Some(plant) = plant {
            let other_posts = w
                .truth
                .sites
                .iter()
                .filter(|t| t.post && t.host != plant.host)
                .count();
            if other_posts > 0 {
                assert!(!plant.post, "plant {} must stay GET", plant.host);
            }
        }
        // All-POST webs keep every site POST (no swap target exists).
        let w = generate(&WebConfig {
            num_sites: 6,
            post_fraction: 1.0,
            ..WebConfig::default()
        });
        assert!(w.truth.sites.iter().all(|t| t.post));
    }

    #[test]
    fn hostile_fraction_is_stratified_and_default_off() {
        // Default webs contain no hostile sites: existing experiments keep
        // their honest corpus byte-for-byte.
        let w = small_world();
        assert!(w.truth.sites.iter().all(|t| !t.hostile));
        for (n, frac) in [(6usize, 0.05f64), (20, 0.3), (40, 0.25)] {
            let w = generate(&WebConfig {
                num_sites: n,
                hostile_fraction: frac,
                ..WebConfig::default()
            });
            let hostile = w.truth.sites.iter().filter(|t| t.hostile).count();
            let expect = (((n as f64) * frac).round() as usize).max(1);
            assert_eq!(
                hostile, expect,
                "n={n} frac={frac}: got {hostile} hostile sites"
            );
            // Truth and server agree, and hostile search pages really are
            // mangled (the unclosed analytics comment is unconditional).
            for t in &w.truth.sites {
                let site = w.server.site_by_host(&t.host).expect("site exists");
                assert_eq!(site.hostile, t.hostile);
                let page = w
                    .server
                    .fetch(&Url::new(t.host.clone(), "/search"))
                    .expect("search page serves");
                assert_eq!(
                    page.html.contains("<!-- analytics beacon "),
                    t.hostile,
                    "{}: mangling must track the hostile flag",
                    t.host
                );
            }
        }
        // Everything-hostile still generates and serves.
        let w = generate(&WebConfig {
            num_sites: 5,
            hostile_fraction: 1.0,
            ..WebConfig::default()
        });
        assert!(w.truth.sites.iter().all(|t| t.hostile));
    }

    #[test]
    fn generates_requested_site_count() {
        let w = small_world();
        assert_eq!(w.server.sites().len(), 25);
        assert_eq!(w.truth.sites.len(), 25);
    }

    #[test]
    fn deterministic_generation() {
        let a = small_world();
        let b = small_world();
        for (x, y) in a.truth.sites.iter().zip(&b.truth.sites) {
            assert_eq!(x.host, y.host);
            assert_eq!(x.records, y.records);
            assert_eq!(x.inputs, y.inputs);
        }
    }

    #[test]
    fn all_home_pages_serve() {
        let w = small_world();
        for host in w.server.hosts() {
            let r = w.server.fetch(&Url::new(host.clone(), "/"));
            assert!(r.is_ok(), "home of {host} failed: {r:?}");
        }
    }

    #[test]
    fn truth_matches_server() {
        let w = small_world();
        for t in &w.truth.sites {
            let site = w.server.site_by_host(&t.host).expect("site exists");
            assert_eq!(site.table.table().len(), t.records);
            assert_eq!(site.form.post, t.post);
        }
    }

    #[test]
    fn directory_links_all_sites() {
        let w = small_world();
        let dir = w.server.fetch(&Url::new("dir.sim", "/")).unwrap();
        for t in &w.truth.sites {
            assert!(dir.html.contains(&t.host), "directory missing {}", t.host);
        }
    }

    #[test]
    fn range_pairs_recorded_for_some_sites() {
        let w = generate(&WebConfig {
            num_sites: 60,
            ..WebConfig::default()
        });
        assert!(w.truth.range_pair_fraction() > 0.05);
        for t in &w.truth.sites {
            for (min_n, max_n) in &t.range_pairs {
                assert!(t.inputs.iter().any(|(n, _)| n == min_n));
                assert!(t.inputs.iter().any(|(n, _)| n == max_n));
            }
        }
    }

    #[test]
    fn award_bio_planted_exactly_once() {
        let w = generate(&WebConfig {
            num_sites: 80,
            ..WebConfig::default()
        });
        let mut hits = 0;
        for s in w.server.sites() {
            for (_, row) in s.table.table().iter() {
                if row
                    .iter()
                    .any(|v| v.render().contains("sigmod innovations award"))
                {
                    hits += 1;
                }
            }
        }
        assert_eq!(hits, 1, "exactly one award biography expected");
    }

    #[test]
    fn multiple_languages_present() {
        let w = generate(&WebConfig {
            num_sites: 80,
            ..WebConfig::default()
        });
        assert!(w.truth.languages().len() > 5);
        assert!(w.truth.languages().contains(&"en".to_string()));
    }

    #[test]
    fn grow_site_appends_rows_and_changes_home_page() {
        let mut w = small_world();
        let host = w.truth.sites[0].host.clone();
        let before = w.truth.sites[0].records;
        let home_before = w.server.fetch(&Url::new(host.clone(), "/")).unwrap().html;
        let grown = grow_site(&mut w, 0, 7, 42);
        assert_eq!(grown, before + 7);
        assert_eq!(w.truth.sites[0].records, grown);
        let site = w.server.site_by_host(&host).unwrap();
        assert_eq!(site.table.table().len(), grown);
        // Existing rows are untouched (append-only growth)...
        let fresh = generate(&WebConfig {
            num_sites: 25,
            ..WebConfig::default()
        });
        let orig = fresh.server.site_by_host(&host).unwrap();
        for i in 0..before {
            let id = deepweb_common::ids::RecordId(i as u32);
            assert_eq!(site.table.table().row(id), orig.table.table().row(id));
        }
        // ...and the home page observably changed.
        let home_after = w.server.fetch(&Url::new(host.clone(), "/")).unwrap().html;
        assert_ne!(home_before, home_after);
        // New rows serve as detail pages and still match the schema.
        let r = w
            .server
            .fetch(&Url::parse(&format!("http://{}/item?id={}", host, grown - 1)).unwrap());
        assert!(r.is_ok());
    }

    #[test]
    fn grow_site_is_deterministic_and_stream_splits() {
        let grow_twice = |a: usize, b: usize| {
            let mut w = small_world();
            grow_site(&mut w, 1, a, 7);
            grow_site(&mut w, 1, b, 7);
            let site = &w.server.sites()[1];
            (0..site.table.table().len())
                .map(|i| {
                    format!(
                        "{:?}",
                        site.table
                            .table()
                            .row(deepweb_common::ids::RecordId(i as u32))
                    )
                })
                .collect::<Vec<_>>()
        };
        // Same growth schedule ⇒ byte-identical tables.
        assert_eq!(grow_twice(4, 3), grow_twice(4, 3));
        // The stream is keyed by current size: 4+3 and 7+0 diverge (different
        // split points draw different rows), but both are deterministic.
        assert_eq!(grow_twice(7, 0).len(), grow_twice(4, 3).len());
        // Zero growth is a no-op.
        let mut w = small_world();
        let before = w.truth.sites[2].records;
        assert_eq!(grow_site(&mut w, 2, 0, 7), before);
    }

    #[test]
    fn site_sizes_are_skewed() {
        let w = generate(&WebConfig {
            num_sites: 50,
            ..WebConfig::default()
        });
        let sizes: Vec<usize> = w.truth.sites.iter().map(|s| s.records).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max >= min * 4, "expect heavy skew, got min={min} max={max}");
    }
}
