//! The HTTP-like boundary between crawlers and the simulated web.
//!
//! Everything the surfacer, the vertical engine and the WebTables harvester
//! know about the web comes through [`Fetcher::fetch`] — one URL in, HTML (or
//! an error status) out — so the algorithms are structurally identical to
//! their real-web counterparts.

use deepweb_common::{Error, Result, Url};

/// A successful HTTP-like response.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Response {
    /// Status code (always 200 here; error statuses surface as `Error::Http`).
    pub status: u16,
    /// The page body.
    pub html: String,
}

/// Anything that can serve URLs.
///
/// `Send + Sync` is part of the contract: the sharded surfacing pipeline
/// probes many sites from worker threads against one shared fetcher, so
/// implementations must use interior mutability that tolerates concurrent
/// callers (e.g. the web server's sharded request counters).
pub trait Fetcher: Send + Sync {
    /// Fetch a URL. Error statuses (404, 405, 500) come back as
    /// [`Error::Http`] so callers must handle failing sites.
    fn fetch(&self, url: &Url) -> Result<Response>;
}

impl<F: Fetcher + ?Sized> Fetcher for &F {
    fn fetch(&self, url: &Url) -> Result<Response> {
        (**self).fetch(url)
    }
}

/// Helper for building an HTTP error.
pub fn http_error(status: u16, url: &Url) -> Error {
    Error::Http {
        status,
        url: url.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed;
    impl Fetcher for Fixed {
        fn fetch(&self, url: &Url) -> Result<Response> {
            if url.host == "ok.sim" {
                Ok(Response {
                    status: 200,
                    html: "<p>hi</p>".into(),
                })
            } else {
                Err(http_error(404, url))
            }
        }
    }

    #[test]
    fn trait_object_usable() {
        let f: &dyn Fetcher = &Fixed;
        assert!(f.fetch(&Url::new("ok.sim", "/")).is_ok());
        let err = f.fetch(&Url::new("no.sim", "/")).unwrap_err();
        assert!(matches!(err, Error::Http { status: 404, .. }));
    }
}
