//! Deterministic fault injection for the simulated web.
//!
//! [`FaultyFetcher`] wraps any [`Fetcher`] and makes a configurable fraction
//! of URLs misbehave the way hostile or flaky real-web hosts do: transient
//! 500s, timeouts, connections dropped mid-body, and slow responses. Every
//! decision is a pure function of `(fault seed, url, attempt number)` — no
//! wall clock, no global RNG — so a crawl against a faulty web is exactly as
//! reproducible as one against a healthy web, which is what lets the
//! robustness tests assert byte-identical indexes across runs and worker
//! counts.
//!
//! Failing faults are *failure prefixes*: a fault-marked URL fails its first
//! `k` fetch attempts (`1 ≤ k ≤ max_faults_per_url`) and then succeeds
//! forever. Keeping `max_faults_per_url` at or below the fetch policy's retry
//! budget therefore guarantees a retrying crawler sees the same pages as a
//! fault-free one — the clean-equals-faulty index equality the robustness
//! tier is built on. Slow responses never fail; they only accrue simulated
//! delay in [`FaultStats`].

use crate::fetch::{http_error, Fetcher, Response};
use deepweb_common::{fxhash64, FxHashMap, Result, Url};
use parking_lot::Mutex;

/// Which fault (if any) a URL is marked with.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// Fails the failure prefix with HTTP 500.
    Transient500,
    /// Fails the failure prefix with HTTP 408 (simulated timeout).
    Timeout,
    /// Drops the connection partway through the body: the failure prefix
    /// returns HTTP 502 after delivering a deterministic truncated prefix of
    /// the real body (tracked in [`FaultStats::truncated_bytes`]).
    TruncatedBody,
    /// Succeeds, but slowly; accrues simulated delay without failing.
    Slow,
}

/// Configuration for [`FaultyFetcher`]. Rates are fractions of the URL space
/// (disjoint: a URL has at most one fault kind) and must sum to at most 1.
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Seed for the fault schedule, independent of the web seed.
    pub seed: u64,
    /// Fraction of URLs that fail transiently with HTTP 500.
    pub transient_rate: f64,
    /// Fraction of URLs that time out (HTTP 408).
    pub timeout_rate: f64,
    /// Fraction of URLs whose body is truncated mid-transfer (HTTP 502).
    pub truncate_rate: f64,
    /// Fraction of URLs that respond slowly (never fail).
    pub slow_rate: f64,
    /// Failure-prefix cap: a faulty URL fails at most this many attempts
    /// before succeeding. Keep at or below the fetch policy's retry budget
    /// to guarantee eventual success.
    pub max_faults_per_url: u32,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            transient_rate: 0.0,
            timeout_rate: 0.0,
            truncate_rate: 0.0,
            slow_rate: 0.0,
            max_faults_per_url: 2,
        }
    }
}

impl FaultConfig {
    /// A schedule where `rate` of URLs fail transiently (mixed 500 / timeout /
    /// truncation in 2:1:1 proportion) and a matching share respond slowly.
    pub fn transient(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            transient_rate: rate / 2.0,
            timeout_rate: rate / 4.0,
            truncate_rate: rate / 4.0,
            slow_rate: rate / 2.0,
            max_faults_per_url: 2,
        }
    }

    fn validate(&self) {
        let sum = self.transient_rate + self.timeout_rate + self.truncate_rate + self.slow_rate;
        assert!(
            (0.0..=1.0 + 1e-9).contains(&sum)
                && [
                    self.transient_rate,
                    self.timeout_rate,
                    self.truncate_rate,
                    self.slow_rate,
                ]
                .iter()
                .all(|r| (0.0..=1.0).contains(r)),
            "fault rates must be in [0, 1] and sum to at most 1, got {self:?}"
        );
        assert!(
            self.max_faults_per_url >= 1,
            "max_faults_per_url must be >= 1"
        );
    }
}

/// Counters accumulated by a [`FaultyFetcher`]; all deterministic for a given
/// `(config, fetch sequence)` pair.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct FaultStats {
    /// Total fetch attempts seen (including failed ones).
    pub fetches: u64,
    /// Attempts failed with HTTP 500.
    pub transient_500s: u64,
    /// Attempts failed with HTTP 408.
    pub timeouts: u64,
    /// Attempts failed mid-body with HTTP 502.
    pub truncated: u64,
    /// Body bytes delivered before truncation, summed over truncated attempts.
    pub truncated_bytes: u64,
    /// Successful-but-slow responses.
    pub slow_responses: u64,
    /// Simulated delay accrued by slow responses (never actually slept).
    pub simulated_delay_ms: u64,
}

impl FaultStats {
    /// Fold another snapshot into this one (build + refresh accounting).
    pub fn merge(&mut self, o: FaultStats) {
        self.fetches += o.fetches;
        self.transient_500s += o.transient_500s;
        self.timeouts += o.timeouts;
        self.truncated += o.truncated;
        self.truncated_bytes += o.truncated_bytes;
        self.slow_responses += o.slow_responses;
        self.simulated_delay_ms += o.simulated_delay_ms;
    }
}

/// A [`Fetcher`] decorator that injects deterministic faults.
pub struct FaultyFetcher<F> {
    inner: F,
    cfg: FaultConfig,
    attempts: Mutex<FxHashMap<String, u32>>,
    stats: Mutex<FaultStats>,
}

impl<F: Fetcher> FaultyFetcher<F> {
    /// Wrap `inner` with the given fault schedule.
    pub fn new(inner: F, cfg: FaultConfig) -> Self {
        cfg.validate();
        FaultyFetcher {
            inner,
            cfg,
            attempts: Mutex::new(FxHashMap::default()),
            stats: Mutex::new(FaultStats::default()),
        }
    }

    /// Snapshot of the fault counters.
    pub fn stats(&self) -> FaultStats {
        *self.stats.lock()
    }

    /// The wrapped fetcher.
    pub fn inner(&self) -> &F {
        &self.inner
    }

    /// The fault (if any) scheduled for `url`, and the length of its failure
    /// prefix. Pure: same config and URL always yield the same answer.
    pub fn schedule_for(&self, url: &Url) -> Option<(FaultKind, u32)> {
        let h = fxhash64(&format!("{}|{}", self.cfg.seed, url));
        // Top 32 bits pick the fault kind; low bits size the failure prefix.
        let roll = ((h >> 32) as f64) / (u32::MAX as f64 + 1.0);
        let c = &self.cfg;
        let kind = if roll < c.transient_rate {
            FaultKind::Transient500
        } else if roll < c.transient_rate + c.timeout_rate {
            FaultKind::Timeout
        } else if roll < c.transient_rate + c.timeout_rate + c.truncate_rate {
            FaultKind::TruncatedBody
        } else if roll < c.transient_rate + c.timeout_rate + c.truncate_rate + c.slow_rate {
            FaultKind::Slow
        } else {
            return None;
        };
        let prefix = 1 + (h as u32) % c.max_faults_per_url;
        Some((kind, prefix))
    }
}

impl<F: Fetcher> Fetcher for FaultyFetcher<F> {
    fn fetch(&self, url: &Url) -> Result<Response> {
        let attempt = {
            let mut m = self.attempts.lock();
            let c = m.entry(url.to_string()).or_insert(0);
            let a = *c;
            *c += 1;
            a
        };
        self.stats.lock().fetches += 1;
        let Some((kind, prefix)) = self.schedule_for(url) else {
            return self.inner.fetch(url);
        };
        let h = fxhash64(&format!("{}|body|{}", self.cfg.seed, url));
        match kind {
            FaultKind::Slow => {
                let resp = self.inner.fetch(url);
                let mut s = self.stats.lock();
                s.slow_responses += 1;
                s.simulated_delay_ms += 200 + h % 1800;
                resp
            }
            _ if attempt >= prefix => self.inner.fetch(url),
            FaultKind::Transient500 => {
                self.stats.lock().transient_500s += 1;
                Err(http_error(500, url))
            }
            FaultKind::Timeout => {
                self.stats.lock().timeouts += 1;
                Err(http_error(408, url))
            }
            FaultKind::TruncatedBody => {
                // Deliver a deterministic prefix of the real body (25–75%),
                // then "drop the connection": the caller sees a transport
                // error, exactly as a real HTTP client reports a short read.
                let delivered = match self.inner.fetch(url) {
                    Ok(resp) => {
                        let frac = 0.25 + 0.5 * ((h % 1000) as f64 / 1000.0);
                        let cut = ((resp.html.len() as f64) * frac) as usize;
                        let mut end = cut.min(resp.html.len());
                        while end > 0 && !resp.html.is_char_boundary(end) {
                            end -= 1;
                        }
                        end as u64
                    }
                    Err(_) => 0,
                };
                let mut s = self.stats.lock();
                s.truncated += 1;
                s.truncated_bytes += delivered;
                drop(s);
                Err(http_error(502, url))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepweb_common::Error;

    struct Fixed;
    impl Fetcher for Fixed {
        fn fetch(&self, url: &Url) -> Result<Response> {
            Ok(Response {
                status: 200,
                html: format!("<html><body><p>page {}</p></body></html>", url),
            })
        }
    }

    fn faulty(cfg: FaultConfig) -> FaultyFetcher<Fixed> {
        FaultyFetcher::new(Fixed, cfg)
    }

    #[test]
    fn zero_rates_are_transparent() {
        let f = faulty(FaultConfig::default());
        for i in 0..50 {
            let url = Url::new(format!("h{i}.sim"), "/");
            assert!(f.fetch(&url).is_ok());
        }
        let s = f.stats();
        assert_eq!(s.fetches, 50);
        assert_eq!(
            s,
            FaultStats {
                fetches: 50,
                ..FaultStats::default()
            }
        );
    }

    #[test]
    fn failure_prefix_then_success_forever() {
        let cfg = FaultConfig {
            seed: 7,
            transient_rate: 1.0,
            max_faults_per_url: 3,
            ..FaultConfig::default()
        };
        let f = faulty(cfg);
        let url = Url::new("a.sim", "/search");
        let (kind, prefix) = f.schedule_for(&url).expect("rate 1.0 marks every URL");
        assert_eq!(kind, FaultKind::Transient500);
        assert!((1..=3).contains(&prefix));
        for _ in 0..prefix {
            let err = f.fetch(&url).unwrap_err();
            assert!(matches!(err, Error::Http { status: 500, .. }));
        }
        for _ in 0..5 {
            assert!(f.fetch(&url).is_ok(), "post-prefix fetches must succeed");
        }
        assert_eq!(f.stats().transient_500s, prefix as u64);
    }

    #[test]
    fn schedule_is_deterministic_and_seed_sensitive() {
        let cfg = FaultConfig::transient(42, 0.5);
        let a = faulty(cfg);
        let b = faulty(cfg);
        let c = faulty(FaultConfig::transient(43, 0.5));
        let mut differs = false;
        for i in 0..200 {
            let url = Url::new(format!("host-{i:03}.sim"), "/results").with_param("q", "x");
            assert_eq!(a.schedule_for(&url), b.schedule_for(&url));
            differs |= a.schedule_for(&url) != c.schedule_for(&url);
        }
        assert!(differs, "different seeds must produce different schedules");
    }

    #[test]
    fn rates_hit_roughly_the_configured_fraction() {
        let cfg = FaultConfig {
            seed: 1,
            transient_rate: 0.3,
            ..FaultConfig::default()
        };
        let f = faulty(cfg);
        let n = 2000;
        let marked = (0..n)
            .filter(|i| {
                f.schedule_for(&Url::new(format!("h{i}.sim"), "/page"))
                    .is_some()
            })
            .count();
        let frac = marked as f64 / n as f64;
        assert!((0.25..=0.35).contains(&frac), "got {frac}");
    }

    #[test]
    fn timeout_and_truncation_report_their_statuses() {
        let base = FaultConfig {
            seed: 3,
            max_faults_per_url: 1,
            ..FaultConfig::default()
        };
        let f = faulty(FaultConfig {
            timeout_rate: 1.0,
            ..base
        });
        let url = Url::new("t.sim", "/");
        assert!(matches!(
            f.fetch(&url).unwrap_err(),
            Error::Http { status: 408, .. }
        ));
        assert!(f.fetch(&url).is_ok());
        assert_eq!(f.stats().timeouts, 1);

        let f = faulty(FaultConfig {
            truncate_rate: 1.0,
            ..base
        });
        assert!(matches!(
            f.fetch(&url).unwrap_err(),
            Error::Http { status: 502, .. }
        ));
        let s = f.stats();
        assert_eq!(s.truncated, 1);
        let full = Fixed.fetch(&url).unwrap().html.len() as u64;
        assert!(s.truncated_bytes > 0 && s.truncated_bytes < full);
        assert!(f.fetch(&url).is_ok());
    }

    #[test]
    fn slow_urls_succeed_and_accrue_delay() {
        let cfg = FaultConfig {
            seed: 9,
            slow_rate: 1.0,
            ..FaultConfig::default()
        };
        let f = faulty(cfg);
        for i in 0..10 {
            assert!(f.fetch(&Url::new(format!("s{i}.sim"), "/")).is_ok());
        }
        let s = f.stats();
        assert_eq!(s.slow_responses, 10);
        assert!(s.simulated_delay_ms >= 10 * 200);
        assert_eq!(s.transient_500s + s.timeouts + s.truncated, 0);
    }

    #[test]
    fn prefix_never_exceeds_cap() {
        let cfg = FaultConfig {
            seed: 11,
            transient_rate: 0.5,
            timeout_rate: 0.25,
            truncate_rate: 0.25,
            max_faults_per_url: 2,
            ..FaultConfig::default()
        };
        let f = faulty(cfg);
        for i in 0..300 {
            let url = Url::new(format!("p{i}.sim"), "/item").with_param("id", "1");
            if let Some((_, prefix)) = f.schedule_for(&url) {
                assert!((1..=2).contains(&prefix));
            }
        }
    }
}
