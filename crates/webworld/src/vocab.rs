//! Domain vocabularies for the synthetic web.
//!
//! Everything is generated deterministically (no embedded data files): city
//! names are built combinatorially from real-sounding morphemes, zip codes are
//! sampled from a seeded RNG, per-language filler lexicons are pseudo-words
//! derived from the language code. What matters for the experiments is the
//! *shape* of the data — formats, cardinalities, co-occurrences — not whether
//! "Oakville" exists (DESIGN.md §2).

use deepweb_common::{derive_rng, FxHashMap};
use rand::seq::SliceRandom;
use rand::Rng;

/// Car makes with their models — the canonical correlated pair (paper §4.2).
pub fn car_makes() -> Vec<(&'static str, Vec<&'static str>)> {
    vec![
        ("honda", vec!["civic", "accord", "pilot", "odyssey"]),
        (
            "ford",
            vec!["focus", "fiesta", "mustang", "explorer", "taurus"],
        ),
        ("toyota", vec!["corolla", "camry", "prius", "tacoma"]),
        ("bmw", vec!["320", "325", "530", "x5"]),
        ("chevrolet", vec!["malibu", "impala", "tahoe", "cavalier"]),
        ("nissan", vec!["altima", "sentra", "maxima", "pathfinder"]),
        ("volkswagen", vec!["jetta", "passat", "golf", "beetle"]),
        ("subaru", vec!["outback", "impreza", "forester", "legacy"]),
        ("dodge", vec!["neon", "caravan", "durango", "stratus"]),
        ("mazda", vec!["protege", "miata", "tribute", "626"]),
        ("audi", vec!["a4", "a6", "tt", "allroad"]),
        ("hyundai", vec!["elantra", "sonata", "accent", "santafe"]),
        ("saturn", vec!["ion", "vue", "sl2", "lw300"]),
        ("volvo", vec!["s40", "s60", "v70", "xc90"]),
        ("jeep", vec!["wrangler", "cherokee", "liberty", "patriot"]),
    ]
}

/// Flat list of all models (used by value libraries).
pub fn car_models() -> Vec<&'static str> {
    car_makes().into_iter().flat_map(|(_, m)| m).collect()
}

/// Cuisines for restaurant-style sites.
pub fn cuisines() -> Vec<&'static str> {
    vec![
        "italian",
        "mexican",
        "chinese",
        "thai",
        "indian",
        "french",
        "japanese",
        "greek",
        "vietnamese",
        "korean",
        "ethiopian",
        "spanish",
        "turkish",
        "lebanese",
        "peruvian",
    ]
}

/// Job categories for employment sites.
pub fn job_titles() -> Vec<&'static str> {
    vec![
        "engineer",
        "nurse",
        "teacher",
        "accountant",
        "electrician",
        "plumber",
        "analyst",
        "designer",
        "manager",
        "technician",
        "librarian",
        "chef",
        "mechanic",
        "pharmacist",
        "paralegal",
        "surveyor",
    ]
}

/// Book genres for library sites.
pub fn book_genres() -> Vec<&'static str> {
    vec![
        "mystery",
        "romance",
        "biography",
        "history",
        "fantasy",
        "poetry",
        "thriller",
        "science",
        "travel",
        "cooking",
        "philosophy",
        "economics",
    ]
}

/// Media categories for database-selection sites (paper §4.2: "movies, music,
/// software, or games") with category-specific keyword pools.
pub fn media_categories() -> Vec<(&'static str, Vec<&'static str>)> {
    vec![
        (
            "movies",
            vec![
                "noir",
                "western",
                "matinee",
                "premiere",
                "documentary",
                "trilogy",
                "sequel",
            ],
        ),
        (
            "music",
            vec![
                "sonata", "quartet", "remix", "ballad", "symphony", "acoustic", "chorale",
            ],
        ),
        (
            "software",
            vec![
                "compiler",
                "debugger",
                "spreadsheet",
                "firewall",
                "antivirus",
                "editor",
                "kernel",
            ],
        ),
        (
            "games",
            vec![
                "arcade",
                "puzzle",
                "platformer",
                "strategy",
                "roguelike",
                "simulation",
                "pinball",
            ],
        ),
    ]
}

/// Government document types (the paper's motivating long-tail content:
/// "rules and regulations, survey results" on portals with no SEO budget).
pub fn gov_doc_types() -> Vec<&'static str> {
    vec![
        "regulation",
        "ordinance",
        "statute",
        "permit",
        "census",
        "survey",
        "bulletin",
        "advisory",
        "assessment",
        "resolution",
    ]
}

/// University departments (for the fortuitous-query scenario, paper §3.2).
pub fn departments() -> Vec<&'static str> {
    vec![
        "csail",
        "mathematics",
        "physics",
        "chemistry",
        "biology",
        "economics",
        "linguistics",
        "history",
        "architecture",
        "aeronautics",
    ]
}

/// Morpheme-combinatorial US-style city names (~deterministic, ~200 distinct).
pub fn us_cities() -> Vec<String> {
    let prefixes = [
        "spring", "oak", "maple", "river", "lake", "cedar", "pine", "fair", "green", "west",
        "east", "north", "clay", "mill", "stone", "bridge", "ash", "elm", "fox", "deer",
    ];
    let suffixes = [
        "field", "ville", "ton", "wood", "port", "burg", "dale", "view", "ford", "haven",
    ];
    let mut out = Vec::with_capacity(prefixes.len() * suffixes.len());
    for p in prefixes {
        for s in suffixes {
            out.push(format!("{p}{s}"));
        }
    }
    out
}

/// Deterministic set of `n` distinct 5-digit zip codes under `seed`.
pub fn us_zipcodes(seed: u64, n: usize) -> Vec<String> {
    let mut rng = derive_rng(seed, "vocab-zips");
    let mut set = std::collections::BTreeSet::new();
    while set.len() < n {
        let z: u32 = rng.gen_range(10000..99999);
        set.insert(format!("{z:05}"));
    }
    set.into_iter().collect()
}

/// Street-name parts for address text.
pub fn streets() -> Vec<&'static str> {
    vec![
        "main",
        "oak",
        "elm",
        "park",
        "washington",
        "lincoln",
        "market",
        "church",
        "walnut",
        "cherry",
    ]
}

/// Surnames for person names (professors, sellers, authors).
pub fn surnames() -> Vec<&'static str> {
    vec![
        "stonebraker",
        "codd",
        "gray",
        "ullman",
        "widom",
        "halevy",
        "madhavan",
        "chang",
        "florescu",
        "ives",
        "doan",
        "franklin",
        "hellerstein",
        "dewitt",
        "bernstein",
        "abiteboul",
        "naughton",
        "ramakrishnan",
        "garcia",
        "molina",
        "suciu",
        "tannen",
        "vianu",
        "chaudhuri",
    ]
}

/// 45 language codes (the paper: content surfaced "in over 45 languages").
pub fn languages() -> Vec<&'static str> {
    vec![
        "en", "es", "fr", "de", "it", "pt", "nl", "sv", "no", "da", "fi", "pl", "cs", "sk", "hu",
        "ro", "bg", "el", "tr", "ru", "uk", "sr", "hr", "sl", "lt", "lv", "et", "he", "ar", "fa",
        "hi", "bn", "ta", "te", "ml", "th", "vi", "id", "ms", "tl", "zh", "ja", "ko", "sw", "af",
    ]
}

/// A deterministic pseudo-word lexicon for `lang`.
///
/// Words are CV-syllable constructions seeded by the language code, so
/// different languages have (almost surely) disjoint vocabularies — which is
/// what makes per-language content distinguishable to the index without
/// shipping 45 dictionaries.
pub fn lexicon(lang: &str, size: usize, seed: u64) -> Vec<String> {
    let consonants = b"bcdfghjklmnprstvz";
    let vowels = b"aeiou";
    let mut rng = derive_rng(seed, &format!("lexicon-{lang}"));
    let mut words = std::collections::BTreeSet::new();
    while words.len() < size {
        let syllables = rng.gen_range(2..=4);
        let mut w = String::new();
        for _ in 0..syllables {
            w.push(consonants[rng.gen_range(0..consonants.len())] as char);
            w.push(vowels[rng.gen_range(0..vowels.len())] as char);
        }
        words.insert(w);
    }
    words.into_iter().collect()
}

/// Build a sentence of `n` words from `lexicon` (used for descriptions and
/// filler paragraphs).
pub fn sentence<R: Rng + ?Sized>(lexicon: &[String], n: usize, rng: &mut R) -> String {
    let mut parts = Vec::with_capacity(n);
    for _ in 0..n {
        parts.push(lexicon.choose(rng).map(String::as_str).unwrap_or("lorem"));
    }
    parts.join(" ")
}

/// Map from make to models as owned strings (convenience).
pub fn make_model_map() -> FxHashMap<String, Vec<String>> {
    car_makes()
        .into_iter()
        .map(|(m, models)| {
            (
                m.to_string(),
                models.into_iter().map(str::to_string).collect(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cities_are_distinct_and_plentiful() {
        let c = us_cities();
        let mut d = c.clone();
        d.sort();
        d.dedup();
        assert_eq!(c.len(), d.len());
        assert!(c.len() >= 150);
    }

    #[test]
    fn zips_are_valid_and_deterministic() {
        let a = us_zipcodes(7, 100);
        let b = us_zipcodes(7, 100);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert!(a
            .iter()
            .all(|z| z.len() == 5 && z.bytes().all(|c| c.is_ascii_digit())));
    }

    #[test]
    fn at_least_45_languages() {
        assert!(languages().len() >= 45);
    }

    #[test]
    fn lexicons_differ_by_language() {
        let en = lexicon("en", 50, 1);
        let fr = lexicon("fr", 50, 1);
        assert_ne!(en, fr);
        let overlap = en.iter().filter(|w| fr.contains(w)).count();
        assert!(
            overlap < 10,
            "languages should be nearly disjoint, overlap={overlap}"
        );
    }

    #[test]
    fn lexicon_deterministic() {
        assert_eq!(lexicon("de", 30, 5), lexicon("de", 30, 5));
    }

    #[test]
    fn sentence_uses_lexicon() {
        let lex = lexicon("en", 20, 1);
        let mut rng = deepweb_common::derive_rng(1, "sent");
        let s = sentence(&lex, 5, &mut rng);
        assert_eq!(s.split(' ').count(), 5);
        assert!(s.split(' ').all(|w| lex.contains(&w.to_string())));
    }

    #[test]
    fn media_categories_have_distinct_keywords() {
        let cats = media_categories();
        assert_eq!(cats.len(), 4);
        let movies: Vec<_> = cats[0].1.clone();
        let software: Vec<_> = cats[2].1.clone();
        assert!(movies.iter().all(|k| !software.contains(k)));
    }

    #[test]
    fn make_model_map_complete() {
        let m = make_model_map();
        assert_eq!(m.len(), 15);
        assert!(m["honda"].contains(&"civic".to_string()));
    }
}
