//! The semantic services of paper §6, built over the ACSDb:
//!
//! 1. attribute **synonyms** (a schema-matching component),
//! 2. attribute → **values** (to auto-fill forms),
//! 3. entity → **properties**,
//! 4. schema **auto-complete**.

use crate::acsdb::Acsdb;

/// Synonym candidates for `attr`: attributes that share value space and
/// co-occurrence context but (almost) never appear together — the classic
/// synonym signature ("make" and "manufacturer" both co-occur with "model"
/// and hold the same values, but no schema uses both).
pub fn synonyms(db: &Acsdb, attr: &str, k: usize) -> Vec<(String, f64)> {
    let ctx_a = db.context(attr);
    let count_a = db.attr_count(attr);
    if count_a == 0 {
        return Vec::new();
    }
    let mut scored: Vec<(String, f64)> = Vec::new();
    for (cand, count_b) in db.attributes() {
        if cand == attr || count_b == 0 {
            continue;
        }
        // (1) Almost never co-occur.
        let together = db.pair_count(attr, cand) as f64;
        let cooccur_penalty = together / count_a.min(count_b) as f64;
        if cooccur_penalty > 0.1 {
            continue;
        }
        // (2) Context similarity (cosine over shared co-occurring attrs).
        let ctx_b = db.context(cand);
        let mut dot = 0.0;
        for (a, &ca) in &ctx_a {
            if let Some(&cb) = ctx_b.get(a) {
                dot += (ca as f64) * (cb as f64);
            }
        }
        let norm_a: f64 = ctx_a
            .values()
            .map(|&c| (c as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        let norm_b: f64 = ctx_b
            .values()
            .map(|&c| (c as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        let context_sim = if norm_a > 0.0 && norm_b > 0.0 {
            dot / (norm_a * norm_b)
        } else {
            0.0
        };
        // (3) Value overlap.
        let value_sim = db.value_overlap(attr, cand);
        let score = 0.5 * context_sim + 0.5 * value_sim - cooccur_penalty;
        if score > 0.3 {
            scored.push((cand.to_string(), score));
        }
    }
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    scored.truncate(k);
    scored
}

/// Values for an attribute (service 2: "return a set of values for its
/// column ... useful to automatically fill out forms").
pub fn values_for(db: &Acsdb, attr: &str, k: usize) -> Vec<String> {
    db.top_values(attr, k).into_iter().map(|(v, _)| v).collect()
}

/// Properties plausibly associated with an entity (service 3): attributes of
/// columns in which the entity value was observed, ranked by frequency,
/// plus the attributes those co-occur with.
pub fn properties_of(db: &Acsdb, entity: &str, k: usize) -> Vec<String> {
    let direct = db.attributes_with_value(entity);
    let mut scored: Vec<(String, f64)> = Vec::new();
    for a in &direct {
        for (b, c) in db.context(a) {
            scored.push((b.to_string(), c as f64));
        }
        scored.push(((*a).to_string(), db.attr_count(a) as f64 * 0.5));
    }
    scored.sort_by(|x, y| {
        y.1.partial_cmp(&x.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| x.0.cmp(&y.0))
    });
    let mut out: Vec<String> = Vec::new();
    for (a, _) in scored {
        if !out.contains(&a) {
            out.push(a);
        }
        if out.len() >= k {
            break;
        }
    }
    out
}

/// Schema auto-complete (service 4): given attributes already chosen, return
/// the attributes database designers most often add, by greedy maximum
/// conditional probability against the given set.
pub fn autocomplete(db: &Acsdb, given: &[&str], k: usize) -> Vec<(String, f64)> {
    let mut chosen: Vec<String> = given.iter().map(|s| s.to_ascii_lowercase()).collect();
    let mut out = Vec::new();
    for _ in 0..k {
        let mut best: Option<(String, f64)> = None;
        for (cand, _) in db.attributes() {
            if chosen.iter().any(|c| c == cand) {
                continue;
            }
            // Score: min over the given set of P(cand | g) — the attribute
            // must fit *all* of what is already there.
            let score = chosen
                .iter()
                .map(|g| db.conditional(cand, g))
                .fold(f64::INFINITY, f64::min);
            if score > 0.0 && best.as_ref().is_none_or(|(_, s)| score > *s) {
                best = Some((cand.to_string(), score));
            }
        }
        match best {
            Some((a, s)) => {
                chosen.push(a.clone());
                out.push((a, s));
            }
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    /// A corpus where "make" and "manufacturer" are synonyms.
    fn db() -> Acsdb {
        let mut db = Acsdb::new();
        for _ in 0..5 {
            db.add_schema(
                &s(&["make", "model", "price"]),
                Some(&[
                    s(&["honda", "ford"]),
                    s(&["civic", "focus"]),
                    s(&["1", "2"]),
                ]),
            );
        }
        for _ in 0..4 {
            db.add_schema(
                &s(&["manufacturer", "model", "year"]),
                Some(&[
                    s(&["honda", "bmw"]),
                    s(&["civic", "x5"]),
                    s(&["1999", "2001"]),
                ]),
            );
        }
        for _ in 0..3 {
            db.add_schema(&s(&["title", "author", "genre"]), None);
        }
        db
    }

    #[test]
    fn synonyms_found_and_ranked() {
        let db = db();
        let syn = synonyms(&db, "make", 3);
        assert!(!syn.is_empty(), "make should have synonyms");
        assert_eq!(syn[0].0, "manufacturer");
        // Attributes that co-occur with make (model) must NOT be synonyms.
        assert!(syn.iter().all(|(a, _)| a != "model"));
    }

    #[test]
    fn values_service() {
        let db = db();
        let vals = values_for(&db, "make", 5);
        assert!(vals.contains(&"honda".to_string()));
        assert!(values_for(&db, "unknown", 5).is_empty());
    }

    #[test]
    fn entity_properties() {
        let db = db();
        let props = properties_of(&db, "honda", 5);
        // honda appears under make and manufacturer; their contexts bring
        // model/price/year.
        assert!(props.contains(&"model".to_string()), "props: {props:?}");
    }

    #[test]
    fn autocomplete_suggests_cooccurring() {
        let db = db();
        let sugg = autocomplete(&db, &["make"], 2);
        assert_eq!(sugg[0].0, "model");
        assert!(sugg[0].1 > 0.9);
        let book = autocomplete(&db, &["title"], 2);
        assert!(book.iter().any(|(a, _)| a == "author"));
        // Unknown seed yields nothing.
        assert!(autocomplete(&db, &["zzz"], 2).is_empty());
    }
}
