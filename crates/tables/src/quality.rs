//! Relational-quality filtering: separating true data tables from layout
//! grids, the WebTables "high-quality relational tables" step (paper §2).

use deepweb_html::ExtractedTable;

/// Quality verdict for an extracted table.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QualityScore {
    /// Combined score in `[0, 1]`; tables ≥ 0.5 are kept.
    pub score: f64,
    /// Whether the table passes the relational filter.
    pub is_relational: bool,
}

/// Score a table: header presence, rectangularity, size, column-type
/// consistency (cells in a column should agree on looking numeric or not).
pub fn score_table(t: &ExtractedTable) -> QualityScore {
    if t.num_rows() < 2 || t.num_cols() < 2 {
        return QualityScore {
            score: 0.0,
            is_relational: false,
        };
    }
    let mut score = 0.0;
    if !t.header.is_empty() {
        score += 0.3;
        // Distinct, nonempty header names.
        let mut names = t.header.clone();
        names.sort();
        names.dedup();
        if names.len() == t.header.len() && names.iter().all(|n| !n.is_empty()) {
            score += 0.1;
        }
    }
    if t.is_rectangular() {
        score += 0.3;
    }
    // Column type consistency.
    let cols = t.num_cols();
    if cols > 0 && !t.rows.is_empty() {
        let mut consistent = 0usize;
        for c in 0..cols {
            let numericish: Vec<bool> = t
                .rows
                .iter()
                .filter_map(|r| r.get(c))
                .map(|cell| looks_numeric(cell))
                .collect();
            if numericish.is_empty() {
                continue;
            }
            let yes = numericish.iter().filter(|&&b| b).count();
            if yes == 0 || yes == numericish.len() {
                consistent += 1;
            }
        }
        score += 0.3 * consistent as f64 / cols as f64;
    }
    QualityScore {
        score,
        is_relational: score >= 0.5,
    }
}

fn looks_numeric(cell: &str) -> bool {
    let stripped: String = cell
        .chars()
        .filter(|c| !matches!(c, '$' | ',' | '.' | '-' | ' '))
        .collect();
    !stripped.is_empty() && stripped.chars().all(|c| c.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(header: Vec<&str>, rows: Vec<Vec<&str>>) -> ExtractedTable {
        ExtractedTable {
            header: header.into_iter().map(str::to_string).collect(),
            rows: rows
                .into_iter()
                .map(|r| r.into_iter().map(str::to_string).collect())
                .collect(),
        }
    }

    #[test]
    fn good_data_table_passes() {
        let t = table(
            vec!["make", "price"],
            vec![
                vec!["honda", "$4500"],
                vec!["ford", "$3000"],
                vec!["bmw", "$9000"],
            ],
        );
        let q = score_table(&t);
        assert!(q.is_relational, "score {}", q.score);
    }

    #[test]
    fn tiny_or_narrow_tables_fail() {
        let t = table(vec!["x"], vec![vec!["1"], vec!["2"]]);
        assert!(!score_table(&t).is_relational);
        let t2 = table(vec!["a", "b"], vec![vec!["1", "2"]]);
        assert!(!score_table(&t2).is_relational);
    }

    #[test]
    fn ragged_layout_grid_scores_lower() {
        let good = table(
            vec!["a", "b"],
            vec![vec!["x", "1"], vec!["y", "2"], vec!["z", "3"]],
        );
        let ragged = ExtractedTable {
            header: vec![],
            rows: vec![
                vec!["nav".into()],
                vec!["x".into(), "1".into(), "extra".into()],
                vec!["y".into()],
            ],
        };
        assert!(score_table(&good).score > score_table(&ragged).score);
        assert!(!score_table(&ragged).is_relational);
    }

    #[test]
    fn mixed_type_columns_penalised() {
        let consistent = table(
            vec!["name", "n"],
            vec![vec!["a", "1"], vec!["b", "2"], vec!["c", "3"]],
        );
        let mixed = table(
            vec!["name", "n"],
            vec![vec!["a", "1"], vec!["b", "two"], vec!["c", "3"]],
        );
        assert!(score_table(&consistent).score > score_table(&mixed).score);
    }
}
