//! The attribute-correlation statistics database (ACSDb) of the WebTables
//! line of work, which the paper's §6 builds its semantic services on:
//! schema frequencies, attribute co-occurrence, and per-attribute value
//! distributions.

use deepweb_common::FxHashMap;

/// Accumulated statistics over a corpus of schemas (from harvested HTML
//  tables and form input groups).
#[derive(Clone, Debug, Default)]
pub struct Acsdb {
    /// Distinct schemas (sorted attribute lists) with occurrence counts.
    schema_counts: FxHashMap<Vec<String>, u32>,
    /// Attribute → number of schemas containing it.
    attr_counts: FxHashMap<String, u32>,
    /// Ordered pair (a,b), a<b → co-occurrence count.
    pair_counts: FxHashMap<(String, String), u32>,
    /// Attribute → value → count (from table columns).
    values: FxHashMap<String, FxHashMap<String, u32>>,
    /// Total schemas added.
    total_schemas: u32,
}

impl Acsdb {
    /// Create an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one schema occurrence (attribute names, any order), with optional
    /// column values (parallel to `attrs`).
    pub fn add_schema(&mut self, attrs: &[String], columns: Option<&[Vec<String>]>) {
        if attrs.is_empty() {
            return;
        }
        let mut key: Vec<String> = attrs.iter().map(|a| a.to_ascii_lowercase()).collect();
        key.sort();
        key.dedup();
        *self.schema_counts.entry(key.clone()).or_insert(0) += 1;
        self.total_schemas += 1;
        for a in &key {
            *self.attr_counts.entry(a.clone()).or_insert(0) += 1;
        }
        for i in 0..key.len() {
            for j in i + 1..key.len() {
                *self
                    .pair_counts
                    .entry((key[i].clone(), key[j].clone()))
                    .or_insert(0) += 1;
            }
        }
        if let Some(cols) = columns {
            for (a, col) in attrs.iter().zip(cols) {
                let entry = self.values.entry(a.to_ascii_lowercase()).or_default();
                for v in col {
                    let v = v.trim().to_ascii_lowercase();
                    if !v.is_empty() {
                        *entry.entry(v).or_insert(0) += 1;
                    }
                }
            }
        }
    }

    /// Number of schemas added.
    pub fn total_schemas(&self) -> u32 {
        self.total_schemas
    }

    /// Number of distinct attributes seen.
    pub fn num_attributes(&self) -> usize {
        self.attr_counts.len()
    }

    /// Schema-frequency of an attribute.
    pub fn attr_count(&self, attr: &str) -> u32 {
        self.attr_counts.get(attr).copied().unwrap_or(0)
    }

    /// Co-occurrence count of two attributes.
    pub fn pair_count(&self, a: &str, b: &str) -> u32 {
        if a == b {
            return self.attr_count(a);
        }
        let key = if a < b {
            (a.to_string(), b.to_string())
        } else {
            (b.to_string(), a.to_string())
        };
        self.pair_counts.get(&key).copied().unwrap_or(0)
    }

    /// `P(a | b)`: fraction of schemas containing `b` that also contain `a`.
    pub fn conditional(&self, a: &str, b: &str) -> f64 {
        let cb = self.attr_count(b);
        if cb == 0 {
            0.0
        } else {
            self.pair_count(a, b) as f64 / cb as f64
        }
    }

    /// All attributes (sorted by frequency desc, then name).
    pub fn attributes(&self) -> Vec<(&str, u32)> {
        let mut v: Vec<(&str, u32)> = self
            .attr_counts
            .iter()
            .map(|(a, &c)| (a.as_str(), c))
            .collect();
        v.sort_by(|x, y| y.1.cmp(&x.1).then_with(|| x.0.cmp(y.0)));
        v
    }

    /// The co-occurrence context of an attribute: every other attribute with
    /// its pair count.
    pub fn context(&self, attr: &str) -> FxHashMap<&str, u32> {
        let mut ctx = FxHashMap::default();
        for ((a, b), &c) in &self.pair_counts {
            if a == attr {
                ctx.insert(b.as_str(), c);
            } else if b == attr {
                ctx.insert(a.as_str(), c);
            }
        }
        ctx
    }

    /// Top values of an attribute's columns.
    pub fn top_values(&self, attr: &str, k: usize) -> Vec<(String, u32)> {
        let mut v: Vec<(String, u32)> = self
            .values
            .get(attr)
            .map(|m| m.iter().map(|(s, &c)| (s.clone(), c)).collect())
            .unwrap_or_default();
        v.sort_by(|x, y| y.1.cmp(&x.1).then_with(|| x.0.cmp(&y.0)));
        v.truncate(k);
        v
    }

    /// Attributes whose value sets contain `value` (entity → property edge).
    pub fn attributes_with_value(&self, value: &str) -> Vec<&str> {
        let value = value.to_ascii_lowercase();
        let mut out: Vec<&str> = self
            .values
            .iter()
            .filter(|(_, vals)| vals.contains_key(&value))
            .map(|(a, _)| a.as_str())
            .collect();
        out.sort();
        out
    }

    /// Value overlap (Jaccard over distinct values) between two attributes —
    /// the synonym signal.
    pub fn value_overlap(&self, a: &str, b: &str) -> f64 {
        let (Some(va), Some(vb)) = (self.values.get(a), self.values.get(b)) else {
            return 0.0;
        };
        let inter = va.keys().filter(|k| vb.contains_key(*k)).count() as f64;
        let union = (va.len() + vb.len()) as f64 - inter;
        if union == 0.0 {
            0.0
        } else {
            inter / union
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    fn db() -> Acsdb {
        let mut db = Acsdb::new();
        db.add_schema(&s(&["make", "model", "price"]), None);
        db.add_schema(&s(&["make", "model", "year"]), None);
        db.add_schema(&s(&["make", "model"]), None);
        db.add_schema(&s(&["title", "author"]), None);
        db
    }

    #[test]
    fn counts_and_conditionals() {
        let db = db();
        assert_eq!(db.total_schemas(), 4);
        assert_eq!(db.attr_count("make"), 3);
        assert_eq!(db.pair_count("make", "model"), 3);
        assert_eq!(db.pair_count("model", "make"), 3);
        assert!((db.conditional("model", "make") - 1.0).abs() < 1e-12);
        assert!((db.conditional("price", "make") - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(db.pair_count("make", "author"), 0);
    }

    #[test]
    fn values_and_entity_lookup() {
        let mut db = Acsdb::new();
        db.add_schema(
            &s(&["make", "price"]),
            Some(&[s(&["honda", "ford"]), s(&["$100", "$200"])]),
        );
        db.add_schema(&s(&["brand"]), Some(&[s(&["honda", "bmw"])]));
        assert_eq!(db.top_values("make", 2).len(), 2);
        assert_eq!(db.attributes_with_value("honda"), vec!["brand", "make"]);
        assert!(db.value_overlap("make", "brand") > 0.3);
        assert_eq!(db.value_overlap("make", "price"), 0.0);
    }

    #[test]
    fn context_covers_cooccurring_attrs() {
        let db = db();
        let ctx = db.context("make");
        assert_eq!(ctx.get("model"), Some(&3));
        assert_eq!(ctx.get("price"), Some(&1));
        assert!(!ctx.contains_key("author"));
    }

    #[test]
    fn dedup_within_schema() {
        let mut db = Acsdb::new();
        db.add_schema(&s(&["a", "a", "b"]), None);
        assert_eq!(db.attr_count("a"), 1);
        assert_eq!(db.pair_count("a", "b"), 1);
    }
}
