//! The semantic server (paper §6): harvest structured artefacts from a
//! crawled web — HTML tables (with values) and form input groups — into an
//! ACSDb, and expose the four services over it.

use crate::acsdb::Acsdb;
use crate::quality::score_table;
use crate::services;
use deepweb_common::Url;
use deepweb_html::{extract_tables, Document};
use deepweb_surfacer::analyze_page;
use deepweb_webworld::Fetcher;

/// Harvest statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct HarvestStats {
    /// Pages scanned.
    pub pages: usize,
    /// Raw tables seen.
    pub tables_seen: usize,
    /// Tables passing the relational filter.
    pub tables_kept: usize,
    /// Forms harvested (input-name schemas).
    pub forms: usize,
}

/// The semantic server: an ACSDb plus its harvest provenance.
#[derive(Clone, Debug, Default)]
pub struct SemanticServer {
    db: Acsdb,
    /// Harvest statistics.
    pub stats: HarvestStats,
}

impl SemanticServer {
    /// Create an empty server.
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying statistics database.
    pub fn db(&self) -> &Acsdb {
        &self.db
    }

    /// Ingest one HTML page: relational tables (schemas + column values) and
    /// form input groups (schemas only).
    pub fn ingest_page(&mut self, page_url: &Url, html: &str) {
        self.stats.pages += 1;
        let doc = Document::parse(html);
        for t in extract_tables(&doc) {
            self.stats.tables_seen += 1;
            if t.header.is_empty() || !score_table(&t).is_relational {
                continue;
            }
            self.stats.tables_kept += 1;
            // Column-major values parallel to the header.
            let cols: Vec<Vec<String>> = (0..t.header.len())
                .map(|c| t.rows.iter().filter_map(|r| r.get(c).cloned()).collect())
                .collect();
            self.db.add_schema(&t.header, Some(&cols));
        }
        for form in analyze_page(page_url, html) {
            let names: Vec<String> = form
                .fillable_inputs()
                .iter()
                .map(|i| i.name.clone())
                .collect();
            if names.len() >= 2 {
                self.stats.forms += 1;
                self.db.add_schema(&names, None);
            }
        }
    }

    /// Crawl the given hosts (home page + linked pages, one hop) and ingest
    /// everything.
    pub fn harvest(&mut self, fetcher: &dyn Fetcher, hosts: &[String]) {
        for host in hosts {
            let home_url = Url::new(host.clone(), "/");
            let Ok(home) = fetcher.fetch(&home_url) else {
                continue;
            };
            self.ingest_page(&home_url, &home.html);
            for a in Document::parse(&home.html).find_all("a") {
                if let Some(href) = a.attr("href") {
                    if let Some(url) = deepweb_surfacer::probe::resolve_href(&home_url, href) {
                        if url.host == *host && url.path != "/" {
                            if let Ok(resp) = fetcher.fetch(&url) {
                                self.ingest_page(&url, &resp.html);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Service 1: synonyms of an attribute.
    pub fn synonyms(&self, attr: &str, k: usize) -> Vec<(String, f64)> {
        services::synonyms(&self.db, attr, k)
    }

    /// Service 2: values for an attribute.
    pub fn values_for(&self, attr: &str, k: usize) -> Vec<String> {
        services::values_for(&self.db, attr, k)
    }

    /// Service 3: properties of an entity.
    pub fn properties_of(&self, entity: &str, k: usize) -> Vec<String> {
        services::properties_of(&self.db, entity, k)
    }

    /// Service 4: schema auto-complete.
    pub fn autocomplete(&self, given: &[&str], k: usize) -> Vec<(String, f64)> {
        services::autocomplete(&self.db, given, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepweb_webworld::{generate, WebConfig};

    fn harvested() -> SemanticServer {
        let w = generate(&WebConfig {
            num_sites: 30,
            table_hosts: 10,
            ..WebConfig::default()
        });
        let mut srv = SemanticServer::new();
        let mut hosts = w.truth.table_hosts.clone();
        hosts.extend(w.truth.sites.iter().map(|t| t.host.clone()));
        srv.harvest(&w.server, &hosts);
        srv
    }

    #[test]
    fn harvest_collects_tables_and_forms() {
        let srv = harvested();
        assert!(srv.stats.tables_kept > 5, "stats: {:?}", srv.stats);
        assert!(srv.stats.forms > 5);
        assert!(srv.db().total_schemas() > 10);
    }

    #[test]
    fn synonym_service_finds_planted_synonyms() {
        let srv = harvested();
        let syn = srv.synonyms("make", 5);
        let names: Vec<&str> = syn.iter().map(|(a, _)| a.as_str()).collect();
        assert!(
            names.contains(&"manufacturer") || names.contains(&"brand"),
            "make synonyms: {names:?}"
        );
    }

    #[test]
    fn values_service_returns_plausible_makes() {
        let srv = harvested();
        let vals = srv.values_for("make", 20);
        assert!(
            vals.iter().any(|v| v == "honda" || v == "ford"),
            "values: {vals:?}"
        );
    }

    #[test]
    fn autocomplete_suggests_schema_completions() {
        let srv = harvested();
        let sugg = srv.autocomplete(&["make", "model"], 3);
        assert!(!sugg.is_empty());
        let names: Vec<&str> = sugg.iter().map(|(a, _)| a.as_str()).collect();
        assert!(
            names.iter().any(|n| [
                "price",
                "cost",
                "year",
                "model year",
                "mileage",
                "miles",
                "odometer",
                "asking price"
            ]
            .contains(n)),
            "suggestions: {names:?}"
        );
    }

    #[test]
    fn entity_properties_for_a_make() {
        let srv = harvested();
        let props = srv.properties_of("honda", 8);
        assert!(!props.is_empty());
    }
}
