//! # deepweb-tables
//!
//! The WebTables / aggregate-structured-data line of paper §6: harvest HTML
//! tables and form schemas from a crawled web, filter for relational
//! quality, accumulate an attribute-correlation statistics database (ACSDb),
//! and serve the four semantic services the paper proposes — attribute
//! synonyms, attribute values, entity properties, and schema auto-complete.

#![warn(missing_docs)]

pub mod acsdb;
pub mod quality;
pub mod server;
pub mod services;

pub use acsdb::Acsdb;
pub use quality::{score_table, QualityScore};
pub use server::{HarvestStats, SemanticServer};
pub use services::{autocomplete, properties_of, synonyms, values_for};
