//! Coverage estimation (paper §5.2): estimate a deep-web site's database
//! size by capture/recapture over random form probes, and phrase the result
//! as the paper's "with probability M%, more than N% exposed" statement.
//!
//! ```text
//! cargo run --example coverage_probe --release
//! ```

use deepweb::common::{derive_rng, Url};
use deepweb::coverage::{coverage_of_surfacing, estimate_size};
use deepweb::surfacer::{analyze_page, Prober, Slot};
use deepweb::webworld::{generate, Fetcher, WebConfig};

fn main() {
    let w = generate(&WebConfig {
        num_sites: 10,
        post_fraction: 0.0,
        ..WebConfig::default()
    });
    let mut rng = derive_rng(7, "coverage-example");
    for t in w.truth.sites.iter().take(5) {
        let url = Url::new(t.host.clone(), "/search");
        let Ok(resp) = w.server.fetch(&url) else {
            continue;
        };
        let form = analyze_page(&url, &resp.html).remove(0);
        let slots: Vec<Slot> = form
            .fillable_inputs()
            .iter()
            .filter(|i| !i.options().is_empty())
            .map(|i| Slot::Single {
                input: i.name.clone(),
                values: i.options().iter().map(|s| s.to_string()).collect(),
            })
            .collect();
        if slots.is_empty() {
            continue;
        }
        let prober = Prober::new(&w.server);
        let run = estimate_size(&prober, &form, &slots, 40, &mut rng);
        print!(
            "{:<24} true={:<5} n1={:<4} n2={:<4} overlap={:<3}",
            t.host, t.records, run.n1, run.n2, run.overlap
        );
        match run.estimated_size {
            Some(est) => {
                print!(" est={est:.0}");
                if let Some(c) = coverage_of_surfacing(&run, run.n1, 0.95) {
                    print!(
                        "  → with 95% confidence, >{:.0}% of the site exposed by batch 1",
                        c.lower_bound * 100.0
                    );
                }
                println!();
            }
            None => println!(" est=n/a (no recapture overlap — probe more)"),
        }
    }
}
