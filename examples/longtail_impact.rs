//! The paper's long-tail analysis (§3.2) end-to-end: surface a web, replay a
//! Zipf query stream, and print the cumulative-impact-by-form-rank curve
//! ("top 10,000 forms accounted for only 50% of deep-web results...").
//!
//! ```text
//! cargo run --example longtail_impact --release
//! ```

use deepweb::common::derive_rng;
use deepweb::queries::{generate_workload, replay, WorkloadConfig};
use deepweb::{quick_config, DeepWebSystem};

fn main() {
    let sys = DeepWebSystem::build(&quick_config(25));
    let wl = generate_workload(
        &sys.world,
        &WorkloadConfig {
            distinct: 300,
            ..Default::default()
        },
    );
    let mut rng = derive_rng(1, "longtail-example");
    let report = replay(&sys.index, &wl, 5000, 1, sys.options, &mut rng);

    println!(
        "replayed 5000 queries (Zipf stream over {} distinct)",
        wl.len()
    );
    println!(
        "deep-web page was the top result for {} queries ({} tail, {} head)",
        report.with_deepweb_result, report.tail_with_deepweb, report.head_with_deepweb
    );
    let curve = report.cumulative_share();
    println!("\ncumulative deep-web impact by form rank:");
    for frac in [0.1, 0.25, 0.5, 1.0] {
        let k = ((curve.len() as f64 * frac).ceil() as usize).clamp(1, curve.len().max(1));
        if !curve.is_empty() {
            println!(
                "  top {:>4.0}% of forms → {:>5.1}% of results",
                frac * 100.0,
                curve[k - 1] * 100.0
            );
        }
    }
    println!(
        "\nforms needed for 50% of deep-web results: {} (of {} impactful forms)",
        report.forms_for_share(0.5),
        curve.len()
    );
}
