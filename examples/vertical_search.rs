//! Vertical search (virtual integration) over the same web that surfacing
//! crawls: register sources against hand-built mediated schemas, route and
//! reformulate queries, and observe the trade-offs the paper describes in
//! §3 — including the fortuitous query that virtual integration cannot
//! answer.
//!
//! ```text
//! cargo run --example vertical_search --release
//! ```

use deepweb::vertical::{register_sources, VerticalEngine};
use deepweb::webworld::{generate, WebConfig};

fn main() {
    let w = generate(&WebConfig {
        num_sites: 30,
        post_fraction: 0.0,
        ..WebConfig::default()
    });
    let hosts: Vec<String> = w.truth.sites.iter().map(|t| t.host.clone()).collect();
    let registry = register_sources(&w.server, &hosts);
    println!(
        "registered {} sources across verticals ({} curated mappings, {} hosts unmapped)",
        registry.sources.len(),
        registry.total_mappings(),
        registry.unmapped_hosts.len()
    );
    let engine = VerticalEngine::new(&w.server, registry);

    for query in [
        "used honda civic",
        "senior nurse springfield",
        "sigmod innovations award mit professor",
    ] {
        w.server.reset_counts();
        let (hits, stats) = engine.answer(query, 3);
        println!(
            "\nquery: {query:?} → routed to {} sources, {} live requests",
            stats.sources_routed, stats.requests
        );
        if hits.is_empty() {
            println!("  (no results — out of the mediated schemas' scope)");
        }
        for h in hits {
            println!("  [{:4.2}] {}: {}", h.score, h.host, h.text);
        }
    }
}
