//! The semantic server of paper §6: harvest HTML tables and form schemas
//! from the synthetic web into an ACSDb, then query the four services.
//!
//! ```text
//! cargo run --example semantic_server --release
//! ```

use deepweb::tables::SemanticServer;
use deepweb::webworld::{generate, WebConfig};

fn main() {
    let w = generate(&WebConfig {
        num_sites: 25,
        table_hosts: 15,
        ..WebConfig::default()
    });
    let mut srv = SemanticServer::new();
    let mut hosts = w.truth.table_hosts.clone();
    hosts.extend(w.truth.sites.iter().map(|t| t.host.clone()));
    srv.harvest(&w.server, &hosts);
    println!(
        "harvested {} pages: {} relational tables kept, {} form schemas, {} attributes",
        srv.stats.pages,
        srv.stats.tables_kept,
        srv.stats.forms,
        srv.db().num_attributes()
    );

    println!("\nsynonyms(\"make\"):");
    for (a, score) in srv.synonyms("make", 5) {
        println!("  {a:<16} {score:.3}");
    }
    println!("\nautocomplete([\"make\", \"model\"]):");
    for (a, p) in srv.autocomplete(&["make", "model"], 5) {
        println!("  {a:<16} P={p:.3}");
    }
    println!(
        "\nvalues_for(\"cuisine\"): {:?}",
        srv.values_for("cuisine", 8)
    );
    println!(
        "properties_of(\"honda\"): {:?}",
        srv.properties_of("honda", 6)
    );
}
