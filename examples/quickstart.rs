//! Quickstart: generate a synthetic web, surface its deep-web content into
//! a search index, and serve keyword queries.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use deepweb::index::{PruningMode, SearchRequest};
use deepweb::{quick_config, DeepWebSystem};

fn main() {
    // A 12-site web with the default domain mix (cars, real estate, jobs,
    // government portals, ...). Everything is deterministic under the seed.
    let mut cfg = quick_config(12);
    cfg.web.post_fraction = 0.0;
    println!("building web + surfacing (offline phase)...");
    let sys = DeepWebSystem::build(&cfg);

    println!(
        "web: {} sites, {} records, {} languages",
        sys.world.truth.sites.len(),
        sys.world.truth.total_records(),
        sys.world.truth.languages().len()
    );
    let stats = sys.index.stats();
    println!(
        "index: {} docs, {} terms, {} postings (offline requests: {})",
        stats.docs, stats.terms, stats.postings, sys.offline_requests
    );

    for query in [
        "used honda civic",
        "italian restaurants",
        "regulation census",
    ] {
        println!("\nquery: {query:?}");
        for hit in sys.search(query, 3) {
            let doc = sys.index.doc(hit.doc);
            let snippet = deepweb::index::snippet(&doc.text, query, 12);
            println!("  [{:5.2}] {} ({:?})", hit.score, doc.url, doc.kind);
            println!("          {snippet}");
        }
    }
    // The same query as a self-contained request, served with block-max
    // pruning — byte-identical to the exhaustive hits above (DESIGN.md §14).
    let req = SearchRequest::new("used honda civic")
        .k(3)
        .pruning(PruningMode::BlockMax);
    assert_eq!(sys.search_request(&req), sys.search("used honda civic", 3));

    // Serving never touches the underlying sites — that is the point of
    // surfacing (paper §3.2).
    sys.world.server.reset_counts();
    let _ = sys.search("used honda civic", 10);
    assert_eq!(sys.world.server.total_requests(), 0);
    println!("\nserve-time site load: 0 requests (content is pre-surfaced)");
}
